//! The deterministic parallel synthesis engine.
//!
//! Every hot loop in graph synthesis — Chung-Lu edge proposals, acceptance
//! coin flips, attribute sampling — is embarrassingly parallel *except* for
//! the shared RNG stream: a single sequential generator forces the whole
//! pipeline onto one core, and naively handing each thread its own generator
//! makes the output depend on the thread schedule.
//!
//! This module removes both constraints with a **chunked execution model**:
//!
//! 1. Work is split into fixed-size *chunks* (a range of proposals or nodes).
//!    The chunk layout depends only on the workload, never on the thread
//!    count.
//! 2. Each chunk draws from its own ChaCha stream, derived from the master
//!    seed and the chunk index by [`derive_chunk_seed`] (the
//!    `seed ⊕ chunk-index` derivation, finalised with SplitMix64 so adjacent
//!    seeds do not produce overlapping streams).
//! 3. Chunks are executed by a small hand-rolled work-stealing pool
//!    ([`run_chunks`]) and their results are merged **in chunk order**.
//!
//! Because a chunk's output is a pure function of `(master seed, chunk
//! index, immutable inputs)` and the merge order is fixed, the synthesized
//! graph is **bit-identical for every thread count** — `threads` is purely a
//! scheduling knob. This is verified by tests at every layer (sampler,
//! workflow, HTTP service).
//!
//! The scheduling primitive deliberately uses [`std::thread::scope`] rather
//! than a persistent pool of `'static` workers (the pattern `crates/service`
//! uses for HTTP connections): synthesis chunks borrow the in-progress graph
//! snapshot from the caller's stack, which scoped threads share safely
//! without cloning it behind an `Arc` every round. Spawn cost (~10 µs per
//! worker) is amortised over chunks of tens of thousands of proposals.
//!
//! ```
//! use agmdp_models::parallel::{run_chunks, ExecPolicy};
//!
//! // Results arrive in chunk order no matter how chunks were scheduled.
//! let policy = ExecPolicy::new(4);
//! let squares = run_chunks(policy.threads(), 8, |chunk| chunk * chunk);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// How chunked synthesis is executed: the thread count (scheduling only —
/// never affects output) and the chunk size (part of the output-defining
/// algorithm, fixed to [`ExecPolicy::DEFAULT_CHUNK_SIZE`] everywhere outside
/// tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    threads: usize,
    chunk_size: usize,
}

impl ExecPolicy {
    /// Default number of proposals (or nodes) per chunk. Large enough that
    /// per-chunk overhead (RNG setup, result vector) is negligible, small
    /// enough that a 100k-node workload still splits into dozens of chunks.
    pub const DEFAULT_CHUNK_SIZE: usize = 16_384;

    /// A policy running `threads` workers with the default chunk size.
    /// `threads` is clamped to at least 1.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            chunk_size: Self::DEFAULT_CHUNK_SIZE,
        }
    }

    /// The single-threaded policy (the default everywhere a caller does not
    /// ask for parallelism). Note that serial execution still runs the
    /// *chunked* algorithm, which is what makes `threads` output-neutral.
    #[must_use]
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Overrides the chunk size (tests only: chunk boundaries are part of
    /// the deterministic sampling algorithm, so changing this changes the
    /// output stream — unlike `threads`, which never does).
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Number of worker threads chunks are scheduled onto.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of work items per chunk.
    #[must_use]
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }
}

impl Default for ExecPolicy {
    fn default() -> Self {
        Self::serial()
    }
}

/// SplitMix64 finalising step: a bijective avalanche mix on 64 bits.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of chunk `chunk_index` from the `master` seed.
///
/// The derivation is `master ⊕ (chunk_index · φ)` followed by a SplitMix64
/// finaliser. The odd multiplier spreads consecutive chunk indices across
/// the whole 64-bit space *before* the xor, so the streams of nearby master
/// seeds cannot collide by simple index shifting (with a plain
/// `master ^ chunk_index`, chunk 1 of seed `s` would equal chunk 0 of seed
/// `s ^ 1`). See the `chunk_streams_do_not_collide` regression test.
#[must_use]
pub fn derive_chunk_seed(master: u64, chunk_index: u64) -> u64 {
    splitmix64(master ^ chunk_index.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// The independent ChaCha RNG driving chunk `chunk_index` of a sampling pass
/// whose master seed is `master`.
#[must_use]
pub fn chunk_rng(master: u64, chunk_index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_chunk_seed(master, chunk_index))
}

/// Number of `u64` draws a [`BlockRng`] buffers per refill (1 KiB of
/// randomness, i.e. 16 ChaCha blocks worth — small enough to stay L1
/// resident next to the proposal buffer, large enough to amortise the
/// per-call dispatch of word-at-a-time draws).
pub const BLOCK_DRAWS: usize = 128;

/// A fixed-size block buffer over an inner RNG stream.
///
/// Instead of pulling one ChaCha word pair per `next_u64` call, the buffer
/// refills [`BLOCK_DRAWS`] draws at a time in one tight loop and hands them
/// out from a local array. The **values** delivered are bit-identical to
/// calling `next_u64` on the inner RNG directly, in the same order — the
/// buffer is purely a batching layer, which is what keeps the per-chunk
/// stream contract of [`chunk_rng`] intact when `sample_cl_edges_chunked`
/// wraps each chunk stream in a `BlockRng`. (The inner stream is *consumed*
/// in block-sized strides, so the final partial block reads ahead of what
/// the caller has drawn; that is invisible because each chunk's RNG is
/// dropped with its chunk and nothing else ever resumes the stream.)
///
/// Granularity is `u64`: `next_u32` takes the low half of a buffered `u64`
/// (consuming the whole draw) and `fill_bytes` goes through buffered `u64`s
/// too, so every method consumes whole 64-bit draws from the same sequence.
///
/// ```
/// use agmdp_models::parallel::{chunk_rng, BlockRng};
/// use rand::RngCore;
///
/// let mut buffered = BlockRng::new(chunk_rng(7, 0));
/// let mut direct = chunk_rng(7, 0);
/// for _ in 0..300 {
///     assert_eq!(buffered.next_u64(), direct.next_u64());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct BlockRng<R: RngCore> {
    inner: R,
    buf: [u64; BLOCK_DRAWS],
    /// Next unread index into `buf`; `BLOCK_DRAWS` means "empty, refill".
    pos: usize,
}

impl<R: RngCore> BlockRng<R> {
    /// Wraps `inner`, delivering its `next_u64` sequence in buffered blocks.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: [0; BLOCK_DRAWS],
            pos: BLOCK_DRAWS,
        }
    }

    #[inline]
    fn refill(&mut self) {
        for slot in &mut self.buf {
            *slot = self.inner.next_u64();
        }
        self.pos = 0;
    }
}

impl<R: RngCore> RngCore for BlockRng<R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.pos == BLOCK_DRAWS {
            self.refill();
        }
        let draw = self.buf[self.pos];
        self.pos += 1;
        draw
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Runs `job(0..num_chunks)` on up to `threads` workers and returns the
/// results **in chunk index order**.
///
/// Scheduling is work-stealing over a shared atomic cursor: idle workers
/// grab the next unclaimed chunk, so a straggler chunk never serialises the
/// rest of the batch. With `threads <= 1` (or a single chunk) the jobs run
/// inline on the caller's thread — same results, no spawns.
///
/// A panicking job propagates the panic to the caller (scoped threads are
/// joined before returning).
pub fn run_chunks<T, F>(threads: usize, num_chunks: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || num_chunks <= 1 {
        return (0..num_chunks).map(job).collect();
    }
    let workers = threads.min(num_chunks);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..num_chunks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                if chunk >= num_chunks {
                    return;
                }
                let result = job(chunk);
                *slots[chunk].lock().expect("chunk slot lock poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("chunk slot lock poisoned")
                .expect("every chunk index below the cursor bound was executed")
        })
        .collect()
}

/// Runs `num_chunks` jobs on up to `threads` workers, handing each job the
/// independent ChaCha stream derived from `master` and its chunk index, and
/// returns the results in chunk order.
///
/// This is the "one trial per chunk" form of [`run_chunks`] used by the
/// `agmdp-eval` experiment harness: every trial's randomness is a pure
/// function of `(master, trial index)`, so a whole experiment grid is
/// bit-identical at any thread count — the same contract the samplers in
/// this module obey one level down.
///
/// ```
/// use agmdp_models::parallel::run_seeded_chunks;
///
/// let serial: Vec<u64> = run_seeded_chunks(1, 6, 42, |i, rng| {
///     use rand::RngCore;
///     i as u64 ^ rng.next_u64()
/// });
/// let parallel = run_seeded_chunks(4, 6, 42, |i, rng| {
///     use rand::RngCore;
///     i as u64 ^ rng.next_u64()
/// });
/// assert_eq!(serial, parallel);
/// ```
pub fn run_seeded_chunks<T, F>(threads: usize, num_chunks: usize, master: u64, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> T + Sync,
{
    run_chunks(threads, num_chunks, |chunk| {
        let mut rng = chunk_rng(master, chunk as u64);
        job(chunk, &mut rng)
    })
}

/// Maps the node range `0..n` in chunks of `policy.chunk_size()`, handing
/// each chunk its derived RNG, and concatenates the per-chunk outputs in
/// node order.
///
/// This is the deterministic parallel form of "sample one value per node"
/// (attribute codes in the AGM workflow): the value of node `i` depends only
/// on `master` and `i`'s chunk, never on the thread count.
pub fn map_node_chunks<T, F>(n: usize, policy: &ExecPolicy, master: u64, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>, &mut StdRng) -> Vec<T> + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let chunk_size = policy.chunk_size();
    let num_chunks = n.div_ceil(chunk_size);
    let batches = run_chunks(policy.threads(), num_chunks, |chunk| {
        let start = chunk * chunk_size;
        let end = (start + chunk_size).min(n);
        let mut rng = chunk_rng(master, chunk as u64);
        job(start..end, &mut rng)
    });
    let mut out = Vec::with_capacity(n);
    for batch in batches {
        out.extend(batch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;
    // HashSet is fine here (and invisible to `agmdp lint`, which skips test
    // code): these sets only answer order-insensitive uniqueness questions,
    // never drive iteration that reaches an output.
    use std::collections::HashSet;

    #[test]
    fn policy_clamps_and_defaults() {
        assert_eq!(ExecPolicy::new(0).threads(), 1);
        assert_eq!(ExecPolicy::new(8).threads(), 8);
        assert_eq!(ExecPolicy::default(), ExecPolicy::serial());
        assert_eq!(
            ExecPolicy::serial().chunk_size(),
            ExecPolicy::DEFAULT_CHUNK_SIZE
        );
        assert_eq!(ExecPolicy::new(2).with_chunk_size(0).chunk_size(), 1);
    }

    #[test]
    fn run_chunks_returns_results_in_chunk_order() {
        for threads in [1, 2, 4, 7, 32] {
            let out = run_chunks(threads, 23, |i| i * 10);
            assert_eq!(out, (0..23).map(|i| i * 10).collect::<Vec<_>>());
        }
        assert!(run_chunks(4, 0, |i| i).is_empty());
        assert_eq!(run_chunks(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn run_chunks_handles_more_threads_than_chunks() {
        let out = run_chunks(64, 3, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn run_chunks_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            run_chunks(4, 8, |i| {
                assert!(i != 5, "chunk 5 exploded");
                i
            })
        });
        assert!(caught.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn chunk_streams_do_not_collide() {
        // Regression: derived seeds must be unique across a grid of nearby
        // master seeds and chunk indices. A plain `master ^ chunk` derivation
        // fails this (chunk 1 of seed s equals chunk 0 of seed s ^ 1), which
        // would correlate the outputs of adjacent user seeds.
        let masters = [0u64, 1, 2, 3, 42, u64::MAX, 0x9E37_79B9_7F4A_7C15];
        let mut seeds = HashSet::new();
        let mut first_draws = HashSet::new();
        for &master in &masters {
            for chunk in 0..64u64 {
                assert!(
                    seeds.insert(derive_chunk_seed(master, chunk)),
                    "seed collision at master {master}, chunk {chunk}"
                );
                assert!(
                    first_draws.insert(chunk_rng(master, chunk).next_u64()),
                    "stream collision at master {master}, chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn chunk_rng_is_deterministic() {
        let mut a = chunk_rng(7, 3);
        let mut b = chunk_rng(7, 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = chunk_rng(7, 4);
        assert_ne!(chunk_rng(7, 3).next_u64(), c.next_u64());
    }

    #[test]
    fn run_seeded_chunks_is_thread_count_invariant_and_seed_sensitive() {
        let draw = |threads: usize, master: u64| -> Vec<u64> {
            run_seeded_chunks(threads, 9, master, |_, rng| rng.next_u64())
        };
        let serial = draw(1, 7);
        for threads in [2, 4, 8] {
            assert_eq!(draw(threads, 7), serial);
        }
        assert_ne!(draw(1, 8), serial);
        // Chunks draw from distinct streams.
        let unique: HashSet<u64> = serial.iter().copied().collect();
        assert_eq!(unique.len(), serial.len());
    }

    #[test]
    fn map_node_chunks_is_thread_count_invariant() {
        let policy_small_chunks = |threads: usize| ExecPolicy::new(threads).with_chunk_size(13);
        let sample = |policy: &ExecPolicy| {
            map_node_chunks(100, policy, 99, |range, rng| {
                range.map(|_| rng.next_u32()).collect()
            })
        };
        let serial = sample(&policy_small_chunks(1));
        assert_eq!(serial.len(), 100);
        for threads in [2, 4, 8] {
            assert_eq!(sample(&policy_small_chunks(threads)), serial);
        }
        // Empty input short-circuits.
        let empty: Vec<u32> = map_node_chunks(0, &ExecPolicy::serial(), 1, |range, rng| {
            range.map(|_| rng.next_u32()).collect()
        });
        assert!(empty.is_empty());
    }

    #[test]
    fn block_rng_matches_unbuffered_draws_at_awkward_lengths() {
        // Regression (block-refill at chunk boundaries): for any number of
        // draws — including 0, 1, and every boundary around the block size —
        // the buffered values must equal word-at-a-time draws from the same
        // ChaCha stream. A refill that skipped, reordered, or re-seeded
        // would diverge at one of these lengths.
        for len in [
            0,
            1,
            BLOCK_DRAWS - 1,
            BLOCK_DRAWS,
            BLOCK_DRAWS + 1,
            3 * BLOCK_DRAWS - 1,
            3 * BLOCK_DRAWS + 1,
        ] {
            let mut buffered = BlockRng::new(chunk_rng(42, 9));
            let mut direct = chunk_rng(42, 9);
            for i in 0..len {
                assert_eq!(
                    buffered.next_u64(),
                    direct.next_u64(),
                    "divergence at draw {i} of {len}"
                );
            }
        }
    }

    #[test]
    fn block_rng_u32_and_bytes_consume_whole_draws() {
        // next_u32 is the low half of a whole buffered u64, and fill_bytes
        // consumes u64-sized strides: interleaving them with next_u64 stays
        // on the single buffered sequence.
        let mut buffered = BlockRng::new(chunk_rng(1, 2));
        let mut reference = chunk_rng(1, 2);
        assert_eq!(buffered.next_u32(), reference.next_u64() as u32);
        assert_eq!(buffered.next_u64(), reference.next_u64());
        let mut bytes = [0u8; 12]; // 1.5 draws -> consumes 2 whole draws
        buffered.fill_bytes(&mut bytes);
        let (a, b) = (reference.next_u64(), reference.next_u64());
        assert_eq!(&bytes[..8], &a.to_le_bytes());
        assert_eq!(&bytes[8..], &b.to_le_bytes()[..4]);
        assert_eq!(buffered.next_u64(), reference.next_u64());
    }

    #[test]
    fn map_node_chunks_depends_on_master_seed() {
        let policy = ExecPolicy::new(2).with_chunk_size(16);
        let a: Vec<u32> = map_node_chunks(64, &policy, 1, |range, rng| {
            range.map(|_| rng.next_u32()).collect()
        });
        let b: Vec<u32> = map_node_chunks(64, &policy, 2, |range, rng| {
            range.map(|_| rng.next_u32()).collect()
        });
        assert_ne!(a, b);
    }
}
