//! Structured tracing: one JSON log line per request/span, written to
//! stderr so it never interleaves with protocol output on stdout.
//!
//! The sink is intentionally tiny: no levels, no formatting backends, just
//! `{"event":"...","ts_ms":...,<fields>}` lines that are trivially
//! machine-parseable. A disabled sink (the default for embedded engines,
//! benches, and `--quiet` servers) short-circuits every field call.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Monotonic ID allocator for request and span identifiers.
#[derive(Debug, Default)]
pub struct IdSource {
    next: AtomicU64,
}

impl IdSource {
    /// A source whose first ID is 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates the next ID.
    pub fn next_id(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// Destination for trace events. Cloning is cheap; a disabled sink makes
/// every [`TraceEvent`] a no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceSink {
    enabled: bool,
}

impl TraceSink {
    /// A sink that discards everything.
    pub fn disabled() -> Self {
        TraceSink { enabled: false }
    }

    /// A sink that writes one JSON line per event to stderr.
    pub fn stderr() -> Self {
        TraceSink { enabled: true }
    }

    /// Whether events will actually be written.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts an event named `event`, stamped with epoch milliseconds.
    pub fn event(&self, event: &str) -> TraceEvent {
        if !self.enabled {
            return TraceEvent { buf: None };
        }
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut buf = String::with_capacity(96);
        buf.push_str("{\"event\":\"");
        escape_into(&mut buf, event);
        buf.push_str("\",\"ts_ms\":");
        buf.push_str(&ts_ms.to_string());
        TraceEvent { buf: Some(buf) }
    }
}

/// A JSON log line under construction. Dropping it without calling
/// [`TraceEvent::emit`] discards the event.
#[derive(Debug)]
pub struct TraceEvent {
    /// `None` when the sink is disabled.
    buf: Option<String>,
}

impl TraceEvent {
    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            buf.push_str(",\"");
            escape_into(buf, key);
            buf.push_str("\":\"");
            escape_into(buf, value);
            buf.push('"');
        }
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            buf.push_str(",\"");
            escape_into(buf, key);
            buf.push_str("\":");
            buf.push_str(&value.to_string());
        }
        self
    }

    /// Adds a float field (rendered `null` if non-finite, as JSON demands).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            buf.push_str(",\"");
            escape_into(buf, key);
            buf.push_str("\":");
            if value.is_finite() {
                buf.push_str(&format!("{value}"));
            } else {
                buf.push_str("null");
            }
        }
        self
    }

    /// Writes the completed line to stderr (no-op for a disabled sink).
    pub fn emit(self) {
        if let Some(mut buf) = self.buf {
            buf.push('}');
            buf.push('\n');
            let stderr = std::io::stderr();
            let mut handle = stderr.lock();
            let _ = handle.write_all(buf.as_bytes());
        }
    }
}

/// Minimal JSON string escaping: quote, backslash, and control characters.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotonic_from_one() {
        let ids = IdSource::new();
        assert_eq!(ids.next_id(), 1);
        assert_eq!(ids.next_id(), 2);
    }

    #[test]
    fn disabled_sink_builds_nothing() {
        let sink = TraceSink::disabled();
        let ev = sink.event("request").str("path", "/x").u64("status", 200);
        assert!(ev.buf.is_none());
        ev.emit(); // must not write or panic
    }

    #[test]
    fn enabled_sink_builds_valid_json_shape() {
        let sink = TraceSink::stderr();
        let ev = sink
            .event("span")
            .str("stage", "fit")
            .u64("id", 7)
            .f64("secs", 0.25)
            .f64("bad", f64::NAN);
        let buf = ev.buf.clone().unwrap_or_default();
        assert!(buf.starts_with("{\"event\":\"span\",\"ts_ms\":"));
        assert!(buf.contains("\"stage\":\"fit\""));
        assert!(buf.contains("\"id\":7"));
        assert!(buf.contains("\"secs\":0.25"));
        assert!(buf.contains("\"bad\":null"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}
