//! Atomics-based metrics registry with a Prometheus text-exposition renderer.
//!
//! Everything here is on the service's `GET /metrics` path, so this module
//! is panic-free by policy: no `unwrap`/`expect`, no slice indexing, no
//! panicking macros. Misuse (re-registering a name under a different kind)
//! degrades to a detached instrument instead of panicking, so a buggy
//! caller can never take the exposition endpoint down.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default latency bucket upper bounds, in seconds. Spans sub-millisecond
/// cache hits through multi-second cold synthesis runs.
pub const LATENCY_BUCKETS_S: &[f64] = &[
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments the counter by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments the counter by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable `f64` gauge, stored as IEEE-754 bits in an `AtomicU64`.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Lock-free additive accumulation of an `f64` stored as bits.
fn f64_fetch_add(bits: &AtomicU64, v: f64) {
    let mut current = bits.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + v).to_bits();
        match bits.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

/// A fixed-bucket histogram with lock-free `AtomicU64` bucket counts.
///
/// Bucket semantics follow Prometheus: a bucket with upper bound `le`
/// counts observations `v <= le` (per-bucket here; rendering emits the
/// cumulative form), and there is always a final `+Inf` bucket.
#[derive(Debug)]
pub struct Histogram {
    /// Finite upper bounds, strictly ascending.
    bounds: Vec<f64>,
    /// One slot per finite bound plus the trailing `+Inf` bucket.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Builds a histogram from `bounds`; non-finite bounds are dropped and
    /// the rest sorted and deduplicated, so any input yields a usable
    /// histogram.
    pub fn new(bounds: &[f64]) -> Self {
        let mut clean: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        clean.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        clean.dedup();
        let counts = (0..clean.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: clean,
            counts,
            sum_bits: AtomicU64::new(0),
        }
    }

    /// Records one observation. A value exactly equal to a bucket's upper
    /// bound lands in that bucket (`le` is inclusive); anything above the
    /// largest finite bound lands in `+Inf`.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|b| *b < v);
        if let Some(slot) = self.counts.get(idx) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        f64_fetch_add(&self.sum_bits, v);
    }

    /// The finite bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts; the last entry is `+Inf`.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.bucket_counts().iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

/// Sorted, owned label pairs — the series key within a family.
type LabelSet = Vec<(String, String)>;

#[derive(Debug)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Family {
    kind: &'static str,
    help: &'static str,
    series: BTreeMap<LabelSet, Instrument>,
}

/// A registry of named metric families, rendered in the Prometheus text
/// exposition format with fully sorted, byte-stable output.
///
/// Instruments are `Arc`-shared: callers register once (get-or-create) and
/// then update through lock-free atomics; the registry mutex is only taken
/// at registration and render time.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter `name{labels}`. If `name` already names
    /// a different metric kind, a detached counter is returned instead of
    /// panicking (its updates will not be rendered).
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        let mut families = self.lock();
        let family = families.entry(name).or_insert_with(|| Family {
            kind: "counter",
            help,
            series: BTreeMap::new(),
        });
        if family.kind != "counter" {
            return Arc::new(Counter::default());
        }
        let slot = family
            .series
            .entry(label_set(labels))
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::default())));
        match slot {
            Instrument::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::default()),
        }
    }

    /// Gets or creates the gauge `name{labels}`; same degradation rules as
    /// [`MetricsRegistry::counter`].
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        let mut families = self.lock();
        let family = families.entry(name).or_insert_with(|| Family {
            kind: "gauge",
            help,
            series: BTreeMap::new(),
        });
        if family.kind != "gauge" {
            return Arc::new(Gauge::default());
        }
        let slot = family
            .series
            .entry(label_set(labels))
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::default())));
        match slot {
            Instrument::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::default()),
        }
    }

    /// Gets or creates the histogram `name{labels}` with the given bucket
    /// upper bounds (a `+Inf` bucket is always added); same degradation
    /// rules as [`MetricsRegistry::counter`]. Bounds are fixed at first
    /// registration; later calls reuse the existing buckets.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        let mut families = self.lock();
        let family = families.entry(name).or_insert_with(|| Family {
            kind: "histogram",
            help,
            series: BTreeMap::new(),
        });
        if family.kind != "histogram" {
            return Arc::new(Histogram::new(bounds));
        }
        let slot = family
            .series
            .entry(label_set(labels))
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::new(bounds))));
        match slot {
            Instrument::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::new(bounds)),
        }
    }

    /// Renders every family in the Prometheus text exposition format.
    /// Families are sorted by name and series by label set, so the output
    /// is byte-stable for a given set of values.
    pub fn render(&self) -> String {
        let families = self.lock();
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind);
            for (labels, instrument) in &family.series {
                match instrument {
                    Instrument::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels), c.get());
                    }
                    Instrument::Gauge(g) => {
                        let _ =
                            writeln!(out, "{name}{} {}", render_labels(labels), fmt_f64(g.get()));
                    }
                    Instrument::Histogram(h) => {
                        render_histogram(&mut out, name, labels, h);
                    }
                }
            }
        }
        out
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<&'static str, Family>> {
        // A poisoned registry mutex only means another thread panicked
        // mid-update; the data is still sound for rendering.
        self.families.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    set
}

/// Renders `{k="v",...}`, or the empty string for a label-free series.
fn render_labels(labels: &LabelSet) -> String {
    render_labels_with(labels, None)
}

/// Renders labels with an optional trailing `le` pair (for histogram
/// buckets, which always carry `le` last for readability).
fn render_labels_with(labels: &LabelSet, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn render_histogram(out: &mut String, name: &str, labels: &LabelSet, h: &Histogram) {
    let per_bucket = h.bucket_counts();
    let mut cumulative = 0u64;
    for (bound, n) in h.bounds().iter().zip(per_bucket.iter()) {
        cumulative += n;
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            render_labels_with(labels, Some(&fmt_f64(*bound)))
        );
    }
    let total: u64 = per_bucket.iter().sum();
    let _ = writeln!(
        out,
        "{name}_bucket{} {total}",
        render_labels_with(labels, Some("+Inf"))
    );
    let _ = writeln!(
        out,
        "{name}_sum{} {}",
        render_labels(labels),
        fmt_f64(h.sum())
    );
    let _ = writeln!(out, "{name}_count{} {total}", render_labels(labels));
}

/// Prometheus-style float formatting: shortest `Display` form, with the
/// infinities spelled `+Inf`/`-Inf`.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        return "NaN".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "+Inf" } else { "-Inf" }.to_string();
    }
    format!("{v}")
}

/// Escapes a label value per the exposition format: backslash, quote, and
/// newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_and_get() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("agmdp_test_total", "help", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Get-or-create returns the same underlying counter.
        assert_eq!(reg.counter("agmdp_test_total", "help", &[]).get(), 5);
    }

    #[test]
    fn gauge_set_and_get() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("agmdp_gauge", "help", &[("dataset", "toy")]);
        g.set(1.5);
        assert_eq!(g.get(), 1.5);
        g.set(-0.25);
        assert_eq!(g.get(), -0.25);
    }

    #[test]
    fn kind_mismatch_degrades_to_detached_instrument() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("agmdp_mixed", "help", &[]);
        c.inc();
        // Same name as a gauge: detached, not rendered, no panic.
        let g = reg.gauge("agmdp_mixed", "help", &[]);
        g.set(9.0);
        let text = reg.render();
        assert!(text.contains("agmdp_mixed 1"));
        assert!(!text.contains('9'));
    }

    #[test]
    fn histogram_value_equal_to_bound_lands_in_that_bucket() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.0); // le="1" is inclusive
        h.observe(1.5);
        h.observe(2.0); // le="2" is inclusive
        assert_eq!(h.bucket_counts(), vec![1, 2, 0]);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_overflow_lands_in_inf_bucket() {
        let h = Histogram::new(&[0.5]);
        h.observe(0.6);
        h.observe(f64::INFINITY);
        assert_eq!(h.bucket_counts(), vec![0, 2]);
    }

    #[test]
    fn histogram_bounds_are_sanitized() {
        let h = Histogram::new(&[2.0, f64::INFINITY, 1.0, 2.0, f64::NAN]);
        assert_eq!(h.bounds(), &[1.0, 2.0]);
        assert_eq!(h.bucket_counts().len(), 3);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("agmdp_esc_total", "help", &[("p", "a\"b\\c\nd")])
            .inc();
        let text = reg.render();
        assert!(text.contains("p=\"a\\\"b\\\\c\\nd\""), "{text}");
    }

    #[test]
    fn concurrent_hammer_loses_no_increments_or_observations() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let reg = Arc::new(MetricsRegistry::new());
        let counter = reg.counter("agmdp_hammer_total", "help", &[]);
        let histogram = reg.histogram("agmdp_hammer_seconds", "help", &[], &[0.5]);
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let counter = Arc::clone(&counter);
                let histogram = Arc::clone(&histogram);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        counter.inc();
                        // Alternate buckets so both slots see contention.
                        histogram.observe(if (t as u64 + i) % 2 == 0 { 0.25 } else { 1.0 });
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("hammer thread");
        }
        let expected = THREADS as u64 * PER_THREAD;
        assert_eq!(counter.get(), expected);
        assert_eq!(histogram.count(), expected);
        assert_eq!(histogram.bucket_counts(), vec![expected / 2, expected / 2]);
        // The f64 CAS loop must not drop observations either:
        // sum = n/2 * 0.25 + n/2 * 1.0 exactly (both values are dyadic).
        let want_sum = (expected / 2) as f64 * 0.25 + (expected / 2) as f64;
        assert_eq!(histogram.sum(), want_sum);
    }

    #[test]
    fn exposition_snapshot_is_byte_stable() {
        let reg = MetricsRegistry::new();
        // Registered out of name order on purpose: rendering sorts.
        reg.gauge("agmdp_z_gauge", "Last by name.", &[("dataset", "toy")])
            .set(0.25);
        reg.counter(
            "agmdp_a_total",
            "First by name.",
            &[("endpoint", "/healthz"), ("status", "200")],
        )
        .add(3);
        let h = reg.histogram("agmdp_m_seconds", "Middle by name.", &[], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.1); // inclusive upper bound
        h.observe(5.0); // +Inf bucket
        let expected = "\
# HELP agmdp_a_total First by name.
# TYPE agmdp_a_total counter
agmdp_a_total{endpoint=\"/healthz\",status=\"200\"} 3
# HELP agmdp_m_seconds Middle by name.
# TYPE agmdp_m_seconds histogram
agmdp_m_seconds_bucket{le=\"0.1\"} 2
agmdp_m_seconds_bucket{le=\"1\"} 2
agmdp_m_seconds_bucket{le=\"+Inf\"} 3
agmdp_m_seconds_sum 5.15
agmdp_m_seconds_count 3
# HELP agmdp_z_gauge Last by name.
# TYPE agmdp_z_gauge gauge
agmdp_z_gauge{dataset=\"toy\"} 0.25
";
        assert_eq!(reg.render(), expected);
        // Rendering is read-only: a second render is byte-identical.
        assert_eq!(reg.render(), expected);
    }
}
