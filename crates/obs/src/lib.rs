//! # agmdp-obs — hand-rolled observability for the AGM-DP service
//!
//! A dependency-free metrics and tracing layer, vendored-only like the rest
//! of the workspace:
//!
//! * [`MetricsRegistry`] — lock-free [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket [`Histogram`]s rendered in the Prometheus text exposition
//!   format with a stable, fully sorted output (snapshot-testable
//!   byte-for-byte).
//! * [`TraceSink`] — one JSON log line per request/span to stderr, plus an
//!   [`IdSource`] for per-request identifiers.
//!
//! ## Determinism boundary
//!
//! This crate reads wall clocks (`SystemTime` for trace timestamps) and is
//! therefore **outside** the deterministic core: only the service layer may
//! depend on it. The deterministic crates (`core`, `models`, …) emit stage
//! callbacks through the clock-free `StageObserver` trait in `agmdp-models`
//! and never observe time themselves; the service-side observer turns those
//! callbacks into histogram samples here.
//!
//! The exposition path ([`MetricsRegistry::render`] and everything it calls)
//! is panic-free by policy — `agmdp lint` enforces it, exactly as it does
//! for the service request path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod registry;
pub mod trace;

pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, LATENCY_BUCKETS_S};
pub use trace::{IdSource, TraceEvent, TraceSink};
