//! Round-trip guarantees for the text interchange format (`agmdp_graph::io`):
//! serialising, re-parsing and re-serialising must reproduce the exact same
//! bytes, and malformed records must be rejected with line-numbered errors.

use agmdp_graph::io::{from_text, read_file, to_text, write_file};
use agmdp_graph::{AttributeSchema, AttributedGraph};
use proptest::prelude::*;

fn arbitrary_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = AttributedGraph> {
    (1usize..max_nodes).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_edges);
        let codes = proptest::collection::vec(0u32..4, n);
        (Just(n), edges, codes).prop_map(|(n, edges, codes)| {
            let mut g = AttributedGraph::new(n, AttributeSchema::new(2));
            g.set_all_attribute_codes(&codes).unwrap();
            for (u, v) in edges {
                if u != v {
                    let _ = g.try_add_edge(u, v).unwrap();
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// write → read → write is the identity on the serialised bytes: parsing
    /// a serialised graph and serialising it again yields identical text.
    #[test]
    fn write_read_write_is_byte_identical(g in arbitrary_graph(30, 120)) {
        let first = to_text(&g);
        let reparsed = from_text(&first).unwrap();
        let second = to_text(&reparsed);
        prop_assert_eq!(first.as_bytes(), second.as_bytes());
        prop_assert_eq!(reparsed, g);
    }

    /// The same byte-identity holds through the filesystem helpers.
    #[test]
    fn file_write_read_write_is_byte_identical(g in arbitrary_graph(20, 60), tag in 0u32..1000) {
        let dir = std::env::temp_dir().join("agmdp_io_roundtrip_prop");
        std::fs::create_dir_all(&dir).unwrap();
        // Process id in the name keeps concurrent `cargo test` runs (which
        // generate identical deterministic tags) from racing on the file.
        let path = dir.join(format!("case_{}_{tag}.graph", std::process::id()));
        write_file(&g, &path).unwrap();
        let bytes_on_disk = std::fs::read(&path).unwrap();
        let reparsed = read_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(bytes_on_disk, to_text(&reparsed).into_bytes());
    }
}

#[test]
fn serialisation_is_stable_for_a_known_graph() {
    let mut g = AttributedGraph::new(3, AttributeSchema::new(1));
    g.set_attribute_code(1, 1).unwrap();
    g.add_edge(2, 0).unwrap();
    g.add_edge(0, 1).unwrap();
    // Edges serialise in canonical order: endpoints normalised to u < v,
    // listed lexicographically — independent of insertion order.
    assert_eq!(
        to_text(&g),
        "nodes 3 1\nattr 0 0\nattr 1 1\nattr 2 0\nedge 0 1\nedge 0 2\n"
    );
}

#[test]
fn malformed_records_are_rejected_with_line_numbers() {
    // (input, substring expected in the error message)
    let cases: &[(&str, &str)] = &[
        ("", "missing 'nodes' header"),
        ("edge 0 1\n", "line 1"),
        ("attr 0 1\n", "line 1"),
        ("nodes\n", "missing node count"),
        ("nodes x 2\n", "invalid node count"),
        ("nodes 3\n", "missing attribute width"),
        ("nodes 3 y\n", "invalid attribute width"),
        ("nodes 3 17\n", "attribute width exceeds 16"),
        ("nodes 3 1\nattr\n", "missing node id"),
        ("nodes 3 1\nattr z 1\n", "invalid node id"),
        ("nodes 3 1\nattr 0 x\n", "invalid attribute bit"),
        ("nodes 3 1\nattr 0 -1\n", "invalid attribute bit"),
        ("nodes 3 1\nedge 0\n", "missing edge endpoint"),
        ("nodes 3 1\nedge 0 q\n", "invalid edge endpoint"),
        ("nodes 3 1\nbogus 1 2\n", "unknown record type 'bogus'"),
        ("nodes 3 1\n# fine\n\nedge 0 1\nwat\n", "line 5"),
    ];
    for (input, expected) in cases {
        let err = from_text(input).expect_err(&format!("input {input:?} should fail"));
        let msg = err.to_string();
        assert!(
            msg.contains(expected),
            "input {input:?}: error {msg:?} does not mention {expected:?}"
        );
    }
    // Semantic errors surfaced through the builder/schema (exact message is
    // owned by those layers; they only need to fail).
    assert!(
        from_text("nodes 3 1\nattr 0 2\n").is_err(),
        "attribute bit out of range"
    );
    assert!(
        from_text("nodes 3 2\nattr 0 1\n").is_err(),
        "too few attribute bits"
    );
    assert!(
        from_text("nodes 3 1\nattr 9 1\n").is_err(),
        "attr node id out of range"
    );
    assert!(
        from_text("nodes 2 1\nedge 0 9\n").is_err(),
        "edge endpoint out of range"
    );
}

#[test]
fn duplicate_edges_and_self_loops_collapse_to_a_simple_graph() {
    let text = "nodes 4 0\nedge 0 1\nedge 1 0\nedge 0 1\nedge 2 2\nedge 3 2\n";
    let g = from_text(text).unwrap();
    assert_eq!(g.num_edges(), 2);
    // Re-serialising the cleaned graph is then a fixed point.
    let cleaned = to_text(&g);
    assert_eq!(to_text(&from_text(&cleaned).unwrap()), cleaned);
}
