//! Property-based equivalence of the two graph representations: on random
//! graphs, the [`FrozenGraph`] CSR snapshot must agree with the
//! [`AttributedGraph`] it was frozen from on every read accessor and on
//! every derived statistic the pipeline consumes — degrees, edge queries,
//! neighbor slices, common-neighbor counts, triangle counts and clustering
//! coefficients — and the freeze must be losslessly reversible (`thaw`) and
//! serialisable (text and binary round-trips).

use agmdp_graph::clustering::{
    average_local_clustering, global_clustering, local_clustering_coefficients,
};
use agmdp_graph::degree::DegreeSequence;
use agmdp_graph::io::{from_binary, to_binary, to_text};
use agmdp_graph::triangles::{count_triangles, count_wedges, triangles_per_node};
use agmdp_graph::{AttributeSchema, AttributedGraph};
use proptest::prelude::*;

fn arbitrary_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = AttributedGraph> {
    (1usize..max_nodes).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_edges);
        let codes = proptest::collection::vec(0u32..4, n);
        (Just(n), edges, codes).prop_map(|(n, edges, codes)| {
            let mut g = AttributedGraph::new(n, AttributeSchema::new(2));
            g.set_all_attribute_codes(&codes).unwrap();
            for (u, v) in edges {
                if u != v {
                    let _ = g.try_add_edge(u, v).unwrap();
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every read accessor of the snapshot returns exactly the original's
    /// values: counts, schema, per-node degrees, neighbor slices and
    /// attribute codes.
    #[test]
    fn accessors_agree(g in arbitrary_graph(40, 200)) {
        let f = g.freeze();
        prop_assert_eq!(f.num_nodes(), g.num_nodes());
        prop_assert_eq!(f.num_edges(), g.num_edges());
        prop_assert_eq!(f.schema(), g.schema());
        prop_assert_eq!(f.degrees(), g.degrees());
        prop_assert_eq!(f.max_degree(), g.max_degree());
        prop_assert_eq!(f.attribute_codes(), g.attribute_codes());
        for v in g.nodes() {
            prop_assert_eq!(f.degree(v), g.degree(v));
            prop_assert_eq!(f.neighbors(v), g.neighbors(v));
            prop_assert_eq!(f.attribute_code(v), g.attribute_code(v));
        }
        let frozen_edges: Vec<_> = f.edges().collect();
        prop_assert_eq!(frozen_edges, g.edge_vec());
    }

    /// `has_edge` and `common_neighbors` agree on every node pair (including
    /// absent edges and both argument orders).
    #[test]
    fn edge_queries_agree(g in arbitrary_graph(25, 120)) {
        let f = g.freeze();
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(f.has_edge(u, v), g.has_edge(u, v));
                if u != v {
                    prop_assert_eq!(
                        f.common_neighbor_count(u, v),
                        g.common_neighbor_count(u, v)
                    );
                }
            }
        }
    }

    /// The derived statistics the metrics layer consumes are bit-identical
    /// across representations: triangle and wedge counts, per-node triangle
    /// counts, local/average/global clustering and the degree distribution.
    #[test]
    fn derived_statistics_agree(g in arbitrary_graph(30, 150)) {
        let f = g.freeze();
        prop_assert_eq!(count_triangles(&f), count_triangles(&g));
        prop_assert_eq!(count_wedges(&f), count_wedges(&g));
        prop_assert_eq!(triangles_per_node(&f), triangles_per_node(&g));
        // Bit-exact float equality is intentional: both paths must execute
        // the same arithmetic in the same order.
        prop_assert_eq!(global_clustering(&f), global_clustering(&g));
        prop_assert_eq!(average_local_clustering(&f), average_local_clustering(&g));
        prop_assert_eq!(
            local_clustering_coefficients(&f),
            local_clustering_coefficients(&g)
        );
        prop_assert_eq!(
            DegreeSequence::from_graph(&f).values().to_vec(),
            DegreeSequence::from_graph(&g).values().to_vec()
        );
    }

    /// Freezing is losslessly reversible and idempotent through thaw.
    #[test]
    fn freeze_thaw_roundtrips(g in arbitrary_graph(35, 150)) {
        let f = g.freeze();
        let thawed = f.thaw();
        prop_assert_eq!(&thawed, &g);
        prop_assert_eq!(thawed.freeze(), f);
    }

    /// Both serialisations are representation-independent and the binary
    /// format round-trips the snapshot exactly.
    #[test]
    fn serialisation_is_representation_independent(g in arbitrary_graph(25, 100)) {
        let f = g.freeze();
        prop_assert_eq!(to_text(&f), to_text(&g));
        let bytes = to_binary(&g);
        prop_assert_eq!(&to_binary(&f), &bytes);
        prop_assert_eq!(from_binary(&bytes).unwrap(), f);
    }
}
