//! Property-based tests for the graph substrate: structural invariants that
//! every algorithm in the workspace silently relies on.

use agmdp_graph::clustering::{
    average_local_clustering, global_clustering, local_clustering_coefficients,
};
use agmdp_graph::components::{connected_components, is_connected};
use agmdp_graph::degree::DegreeSequence;
use agmdp_graph::io::{from_text, to_text};
use agmdp_graph::subgraph::induced_subgraph;
use agmdp_graph::triangles::{count_triangles, count_wedges, triangles_per_node};
use agmdp_graph::truncation::edge_truncation;
use agmdp_graph::{AttributeSchema, AttributedGraph};
use proptest::prelude::*;

fn arbitrary_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = AttributedGraph> {
    (2usize..max_nodes).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_edges);
        let codes = proptest::collection::vec(0u32..4, n);
        (Just(n), edges, codes).prop_map(|(n, edges, codes)| {
            let mut g = AttributedGraph::new(n, AttributeSchema::new(2));
            g.set_all_attribute_codes(&codes).unwrap();
            for (u, v) in edges {
                if u != v {
                    let _ = g.try_add_edge(u, v).unwrap();
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Adjacency symmetry, sortedness and edge counts always hold.
    #[test]
    fn consistency_always_holds(g in arbitrary_graph(40, 200)) {
        prop_assert!(g.check_consistency().is_ok());
        prop_assert_eq!(g.edges().count(), g.num_edges());
        let sum_deg: usize = g.degrees().iter().sum();
        prop_assert_eq!(sum_deg, 2 * g.num_edges());
    }

    /// Removing every edge one by one always succeeds and ends empty.
    #[test]
    fn add_then_remove_all_edges(g in arbitrary_graph(30, 120)) {
        let mut g2 = g.clone();
        for e in g.edges() {
            g2.remove_edge(e.u, e.v).unwrap();
        }
        prop_assert_eq!(g2.num_edges(), 0);
        prop_assert!(g2.check_consistency().is_ok());
    }

    /// Triangle identities: per-node counts sum to 3x the total; the global
    /// clustering coefficient lies in [0, 1] and matches 3*tri/wedges.
    #[test]
    fn triangle_and_clustering_identities(g in arbitrary_graph(30, 150)) {
        let total = count_triangles(&g);
        let per_node: u64 = triangles_per_node(&g).iter().sum();
        prop_assert_eq!(per_node, 3 * total);
        let wedges = count_wedges(&g);
        prop_assert!(3 * total <= wedges);
        let c = global_clustering(&g);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
        let c_avg = average_local_clustering(&g);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c_avg));
        for lc in local_clustering_coefficients(&g) {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&lc));
        }
    }

    /// Component labels partition the node set; the component count is
    /// consistent with `is_connected`.
    #[test]
    fn components_partition_nodes(g in arbitrary_graph(40, 120)) {
        let comps = connected_components(&g);
        prop_assert_eq!(comps.labels.len(), g.num_nodes());
        prop_assert_eq!(comps.sizes.iter().sum::<usize>(), g.num_nodes());
        prop_assert_eq!(comps.count() == 1, is_connected(&g));
        // Every edge joins nodes with the same label.
        for e in g.edges() {
            prop_assert_eq!(comps.labels[e.u as usize], comps.labels[e.v as usize]);
        }
        let largest = comps.largest_component_nodes().len();
        let orphans = comps.orphaned_nodes().len();
        prop_assert_eq!(largest + orphans, g.num_nodes());
    }

    /// Truncation is idempotent: truncating a k-bounded graph at k changes nothing.
    #[test]
    fn truncation_is_idempotent(g in arbitrary_graph(30, 150), k in 1usize..12) {
        let once = edge_truncation(&g, k).graph;
        let twice = edge_truncation(&once, k).graph;
        prop_assert_eq!(once.edge_vec(), twice.edge_vec());
    }

    /// Truncation is monotone in k: larger bounds keep at least as many edges.
    #[test]
    fn truncation_monotone_in_k(g in arbitrary_graph(30, 150), k in 1usize..12) {
        let small = edge_truncation(&g, k).graph.num_edges();
        let large = edge_truncation(&g, k + 1).graph.num_edges();
        prop_assert!(large >= small);
    }

    /// The text format round-trips arbitrary graphs exactly.
    #[test]
    fn io_roundtrip(g in arbitrary_graph(25, 80)) {
        let parsed = from_text(&to_text(&g)).unwrap();
        prop_assert_eq!(parsed, g);
    }

    /// An induced subgraph never has more edges than the parent and preserves
    /// attribute codes under the returned mapping.
    #[test]
    fn induced_subgraph_is_consistent(g in arbitrary_graph(30, 120), keep in proptest::collection::vec(0u32..30, 0..20)) {
        let keep: Vec<u32> = keep.into_iter().filter(|&v| (v as usize) < g.num_nodes()).collect();
        let (sub, mapping) = induced_subgraph(&g, &keep);
        prop_assert!(sub.num_edges() <= g.num_edges());
        prop_assert_eq!(sub.num_nodes(), mapping.len());
        prop_assert!(sub.check_consistency().is_ok());
        for (new_id, &old_id) in mapping.iter().enumerate() {
            prop_assert_eq!(sub.attribute_code(new_id as u32), g.attribute_code(old_id));
        }
        // Every subgraph edge exists in the parent.
        for e in sub.edges() {
            prop_assert!(g.has_edge(mapping[e.u as usize], mapping[e.v as usize]));
        }
    }

    /// Degree-sequence views agree with direct graph queries.
    #[test]
    fn degree_views_agree(g in arbitrary_graph(40, 150)) {
        let s = DegreeSequence::from_graph(&g);
        prop_assert_eq!(s.len(), g.num_nodes());
        prop_assert!((s.total() - 2.0 * g.num_edges() as f64).abs() < 1e-9);
        prop_assert!((s.max() - g.max_degree() as f64).abs() < 1e-9);
        let sorted = s.sorted();
        for w in sorted.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }

    /// Attribute schema encodings are total and consistent on arbitrary codes.
    #[test]
    fn schema_encoding_total(a in 0u32..16, b in 0u32..16, w in 0usize..5) {
        let schema = AttributeSchema::new(w);
        let y = schema.num_node_configs() as u32;
        let (a, b) = (a % y, b % y);
        let idx = schema.edge_config(a, b);
        prop_assert!(idx < schema.num_edge_configs());
        let (lo, hi) = schema.edge_config_pair(idx).unwrap();
        prop_assert_eq!((lo, hi), (a.min(b), a.max(b)));
    }
}
