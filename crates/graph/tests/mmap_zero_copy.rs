//! Edge-case and equivalence coverage for the zero-copy `.agb` load path:
//! mmap-loaded graphs must accept and reject exactly the same files as the
//! owned deserialiser, report the same typed errors for truncation at every
//! byte boundary, reject misaligned buffers and checksum-valid-but-
//! inconsistent payloads, and — property-tested — agree bit-for-bit with
//! [`agmdp_graph::io::from_binary`] under every [`GraphView`] accessor.

use agmdp_graph::io::{from_binary, to_binary, to_text, write_binary_file, BINARY_MAGIC};
use agmdp_graph::{AttributeSchema, AttributedGraph, GraphError, GraphView, MappedGraph};
use proptest::prelude::*;

fn sample_graph() -> AttributedGraph {
    let mut g = AttributedGraph::new(6, AttributeSchema::new(2));
    g.set_all_attribute_codes(&[0, 1, 2, 3, 1, 0]).unwrap();
    for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (1, 4)] {
        g.add_edge(u, v).unwrap();
    }
    g
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("agmdp_mmap_zc_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Re-stamps a tampered buffer with a valid checksum (FNV-1a 64, mirroring
/// the implementation under test) so structural-validation tests are not
/// masked by the integrity check.
fn restamp_checksum(bytes: &mut [u8]) {
    let payload_len = bytes.len() - 8;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &bytes[..payload_len] {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    bytes[payload_len..].copy_from_slice(&hash.to_le_bytes());
}

#[test]
fn truncation_at_every_boundary_matches_owned_errors() {
    let bytes = to_binary(&sample_graph());
    let dir = temp_dir("trunc");
    let path = dir.join("t.agb");
    // Every strict prefix must fail `open` with the same typed error class
    // the owned deserialiser reports for the same bytes — BadMagic below
    // the magic, TruncatedBinary everywhere else — and the trusted tier
    // must be no more lenient about layout.
    for len in 0..bytes.len() {
        std::fs::write(&path, &bytes[..len]).unwrap();
        let owned_err = from_binary(&bytes[..len]).unwrap_err();
        let mapped_err = MappedGraph::open(&path).unwrap_err();
        assert_eq!(
            std::mem::discriminant(&mapped_err),
            std::mem::discriminant(&owned_err),
            "length {len}: mapped {mapped_err:?} vs owned {owned_err:?}"
        );
        let trusted_err = MappedGraph::open_trusted(&path).unwrap_err();
        match trusted_err {
            GraphError::BadMagic => assert!(len < BINARY_MAGIC.len()),
            GraphError::TruncatedBinary { expected, actual } => {
                assert_eq!(actual, len);
                assert!(expected > len);
            }
            other => panic!("unexpected trusted error {other:?} at length {len}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corruption_and_garbage_are_rejected_like_owned() {
    let g = sample_graph();
    let clean = to_binary(&g);
    let dir = temp_dir("corrupt");
    let path = dir.join("c.agb");

    // Bit rot anywhere in the payload fails the checksum on full open.
    for pos in [28, 40, clean.len() - 12] {
        let mut bytes = clean.clone();
        bytes[pos] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            MappedGraph::open(&path).unwrap_err(),
            GraphError::ChecksumMismatch { .. }
        ));
    }

    // Trailing garbage is a Format error in both tiers.
    let mut bytes = clean.clone();
    bytes.extend_from_slice(b"extra");
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        MappedGraph::open(&path).unwrap_err(),
        GraphError::Format(_)
    ));
    assert!(matches!(
        MappedGraph::open_trusted(&path).unwrap_err(),
        GraphError::Format(_)
    ));

    // Wrong magic and a future version are typed identically too.
    let mut bytes = clean.clone();
    bytes[0] = b'X';
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        MappedGraph::open(&path).unwrap_err(),
        GraphError::BadMagic
    ));
    let mut bytes = clean.clone();
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        MappedGraph::open(&path).unwrap_err(),
        GraphError::UnsupportedVersion { .. }
    ));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checksum_valid_but_inconsistent_payloads_fail_full_validation() {
    let g = sample_graph();
    let dir = temp_dir("inconsistent");
    let path = dir.join("i.agb");
    let neighbors_start = 28 + 4 * (g.num_nodes() + 1);

    // Unsorted neighbor list, checksum re-stamped: full open refuses.
    let mut bytes = to_binary(&g);
    for i in 0..4 {
        bytes.swap(neighbors_start + i, neighbors_start + 4 + i);
    }
    restamp_checksum(&mut bytes);
    std::fs::write(&path, &bytes).unwrap();
    match MappedGraph::open(&path).unwrap_err() {
        GraphError::Format(msg) => assert!(msg.contains("sorted"), "message: {msg}"),
        other => panic!("expected Format, got {other:?}"),
    }
    // The trusted tier explicitly skips per-list validation — the file maps
    // (that is the documented trust contract), and its offsets still bound
    // every access.
    let trusted = MappedGraph::open_trusted(&path).unwrap();
    assert_eq!(trusted.num_nodes(), g.num_nodes());
    assert_eq!(trusted.neighbors(0), &[2, 1]);

    // A broken offsets table is caught even by the trusted tier's O(n)
    // sanity scan (non-monotonic / wrong final entry).
    let offsets_start = 28;
    let mut bytes = to_binary(&g);
    bytes[offsets_start + 4..offsets_start + 8].copy_from_slice(&u32::MAX.to_le_bytes());
    restamp_checksum(&mut bytes);
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        MappedGraph::open(&path).unwrap_err(),
        GraphError::Format(_)
    ));
    assert!(matches!(
        MappedGraph::open_trusted(&path).unwrap_err(),
        GraphError::Format(_)
    ));

    // Self-loop with re-stamped checksum: full refuses, typed.
    let mut bytes = to_binary(&g);
    bytes[neighbors_start..neighbors_start + 4].copy_from_slice(&0u32.to_le_bytes());
    restamp_checksum(&mut bytes);
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        MappedGraph::open(&path).unwrap_err(),
        GraphError::SelfLoop { .. } | GraphError::Format(_)
    ));

    std::fs::remove_dir_all(&dir).ok();
}

fn arbitrary_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = AttributedGraph> {
    (1usize..max_nodes, 0usize..2).prop_flat_map(move |(n, attributed)| {
        let width = if attributed == 1 { 2 } else { 0 };
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_edges);
        let codes = proptest::collection::vec(0u32..(1 << width), n);
        (Just(n), Just(width), edges, codes).prop_map(|(n, width, edges, codes)| {
            let mut g = AttributedGraph::new(n, AttributeSchema::new(width));
            g.set_all_attribute_codes(&codes).unwrap();
            for (u, v) in edges {
                if u != v {
                    let _ = g.try_add_edge(u, v).unwrap();
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On random graphs (attributed and width-0), the mmap-loaded graph —
    /// both validation tiers — agrees bit-for-bit with the owned
    /// deserialisation of the same file under every `GraphView` accessor,
    /// and its re-serialisation reproduces the file bytes exactly.
    #[test]
    fn mapped_and_owned_loads_are_bit_identical(g in arbitrary_graph(32, 120)) {
        let dir = temp_dir("prop");
        let path = dir.join("p.agb");
        write_binary_file(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let owned = from_binary(&bytes).unwrap();

        for mapped in [MappedGraph::open(&path).unwrap(), MappedGraph::open_trusted(&path).unwrap()] {
            prop_assert_eq!(mapped.num_nodes(), owned.num_nodes());
            prop_assert_eq!(mapped.num_edges(), owned.num_edges());
            prop_assert_eq!(mapped.schema(), owned.schema());
            prop_assert_eq!(mapped.max_degree(), owned.max_degree());
            prop_assert!((mapped.avg_degree() - owned.avg_degree()).abs() == 0.0);
            for v in owned.nodes() {
                prop_assert_eq!(mapped.neighbors(v), owned.neighbors(v));
                prop_assert_eq!(mapped.degree(v), owned.degree(v));
                prop_assert_eq!(mapped.attribute_code(v), owned.attribute_code(v));
            }
            for u in owned.nodes() {
                for v in owned.nodes() {
                    prop_assert_eq!(mapped.has_edge(u, v), owned.has_edge(u, v));
                    if u != v {
                        prop_assert_eq!(
                            mapped.common_neighbor_count(u, v),
                            owned.common_neighbor_count(u, v)
                        );
                        prop_assert_eq!(mapped.edge_config(u, v), owned.edge_config(u, v));
                    }
                }
            }
            let mapped_edges: Vec<_> = mapped.edges().collect();
            let owned_edges: Vec<_> = owned.edges().collect();
            prop_assert_eq!(mapped_edges, owned_edges);
            // Round-trips: text render, owned copy, and byte-identical
            // re-serialisation of the view.
            prop_assert_eq!(to_text(&mapped), to_text(&owned));
            prop_assert_eq!(mapped.to_frozen(), owned.clone());
            prop_assert_eq!(to_binary(&mapped), bytes.clone());
            prop_assert_eq!(mapped.byte_len(), bytes.len());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
