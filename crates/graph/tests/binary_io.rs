//! Robustness guarantees for the binary `.agb` graph format: lossless
//! round-trips (including byte-identity through the text format) and typed
//! [`GraphError`]s — never panics — for every class of malformed input:
//! truncation, bad magic, unsupported versions, checksum mismatches and
//! checksum-valid-but-structurally-broken payloads.

use agmdp_graph::io::{
    from_binary, is_binary, load_file, load_frozen_file, read_binary_file, to_binary, to_text,
    write_binary_file, BINARY_MAGIC, BINARY_VERSION,
};
use agmdp_graph::{AttributeSchema, AttributedGraph, GraphError};

fn sample_graph() -> AttributedGraph {
    let mut g = AttributedGraph::new(6, AttributeSchema::new(2));
    g.set_all_attribute_codes(&[0, 1, 2, 3, 1, 0]).unwrap();
    for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (1, 4)] {
        g.add_edge(u, v).unwrap();
    }
    g
}

/// Re-stamps a tampered buffer with a valid checksum, so tests can separate
/// "the checksum catches corruption" from "validation catches structurally
/// broken but checksum-consistent files".
fn restamp_checksum(bytes: &mut [u8]) {
    // FNV-1a 64, mirroring the implementation under test.
    let payload_len = bytes.len() - 8;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &bytes[..payload_len] {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    bytes[payload_len..].copy_from_slice(&hash.to_le_bytes());
}

#[test]
fn text_binary_text_roundtrip_is_byte_identical() {
    let g = sample_graph();
    let original_text = to_text(&g);
    let binary = to_binary(&g);
    let back_to_text = to_text(&from_binary(&binary).unwrap());
    assert_eq!(original_text.as_bytes(), back_to_text.as_bytes());
}

#[test]
fn binary_binary_roundtrip_is_byte_identical() {
    let g = sample_graph();
    let first = to_binary(&g);
    let second = to_binary(&from_binary(&first).unwrap());
    assert_eq!(first, second);
}

#[test]
fn truncated_files_return_typed_errors_at_every_length() {
    let bytes = to_binary(&sample_graph());
    // Every strict prefix must fail without panicking; prefixes long enough
    // to carry the magic must report exactly BadMagic (length < 4) or
    // TruncatedBinary — never a checksum or format error.
    for len in 0..bytes.len() {
        let err = from_binary(&bytes[..len]).unwrap_err();
        match err {
            GraphError::BadMagic => assert!(len < BINARY_MAGIC.len(), "BadMagic at length {len}"),
            GraphError::TruncatedBinary { expected, actual } => {
                assert_eq!(actual, len);
                assert!(expected > len, "expected {expected} not beyond {len}");
            }
            other => panic!("unexpected error {other:?} at length {len}"),
        }
    }
}

#[test]
fn bad_magic_is_reported() {
    let mut bytes = to_binary(&sample_graph());
    bytes[0] = b'X';
    assert!(matches!(from_binary(&bytes), Err(GraphError::BadMagic)));
    // Text content is not binary either.
    assert!(!is_binary(b"nodes 3 0\n"));
    assert!(matches!(
        from_binary(b"nodes 3 0\n"),
        Err(GraphError::BadMagic)
    ));
}

#[test]
fn unsupported_version_is_reported() {
    let mut bytes = to_binary(&sample_graph());
    bytes[4..8].copy_from_slice(&(BINARY_VERSION + 1).to_le_bytes());
    match from_binary(&bytes) {
        Err(GraphError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, BINARY_VERSION + 1);
            assert_eq!(supported, BINARY_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn corrupted_payload_fails_the_checksum() {
    let clean = to_binary(&sample_graph());
    // Flip one bit in every payload byte position (past the version field,
    // before the checksum) — each corruption must be caught.
    for pos in [28, 40, clean.len() - 12, clean.len() - 9] {
        let mut bytes = clean.clone();
        bytes[pos] ^= 0x01;
        assert!(
            matches!(
                from_binary(&bytes),
                Err(GraphError::ChecksumMismatch { .. })
            ),
            "corruption at byte {pos} escaped the checksum"
        );
    }
    // Corrupting the stored checksum itself is also a mismatch.
    let mut bytes = clean.clone();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    assert!(matches!(
        from_binary(&bytes),
        Err(GraphError::ChecksumMismatch { .. })
    ));
}

#[test]
fn checksum_valid_but_inconsistent_csr_is_rejected() {
    // Make node 0's list unsorted (swap its two neighbors) and re-stamp the
    // checksum: integrity passes, structural validation must still refuse.
    let g = sample_graph();
    assert_eq!(g.neighbors(0), &[1, 2]);
    let mut bytes = to_binary(&g);
    let neighbors_start = 28 + 4 * (g.num_nodes() + 1);
    let (a, b) = (neighbors_start, neighbors_start + 4);
    for i in 0..4 {
        bytes.swap(a + i, b + i);
    }
    restamp_checksum(&mut bytes);
    match from_binary(&bytes) {
        Err(GraphError::Format(msg)) => assert!(msg.contains("sorted"), "message: {msg}"),
        other => panic!("expected a Format error, got {other:?}"),
    }

    // A self-loop smuggled in with a matching mirror-free entry: point node
    // 0's first neighbor at itself.
    let mut bytes = to_binary(&g);
    bytes[neighbors_start..neighbors_start + 4].copy_from_slice(&0u32.to_le_bytes());
    restamp_checksum(&mut bytes);
    assert!(matches!(
        from_binary(&bytes),
        Err(GraphError::SelfLoop { .. }) | Err(GraphError::Format(_))
    ));
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = to_binary(&sample_graph());
    bytes.extend_from_slice(b"extra");
    assert!(matches!(from_binary(&bytes), Err(GraphError::Format(_))));
}

#[test]
fn oversized_width_is_rejected() {
    let mut bytes = to_binary(&sample_graph());
    bytes[24..28].copy_from_slice(&17u32.to_le_bytes());
    restamp_checksum(&mut bytes);
    // Width is validated before the payload is interpreted, so this is a
    // Format error rather than a downstream panic in AttributeSchema::new.
    assert!(matches!(from_binary(&bytes), Err(GraphError::Format(_))));
}

#[test]
fn file_helpers_report_io_and_format_errors() {
    let err = read_binary_file("/definitely/not/a/real/path.agb").unwrap_err();
    assert!(matches!(err, GraphError::Io(_)));
    assert!(matches!(
        load_file("/definitely/not/a/real/path.agb").unwrap_err(),
        GraphError::Io(_)
    ));

    let dir = std::env::temp_dir().join(format!("agmdp_binary_io_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // A non-UTF-8, non-magic file is neither format.
    let junk_path = dir.join("junk.bin");
    std::fs::write(&junk_path, [0xFFu8, 0xFE, 0x00, 0x01]).unwrap();
    assert!(matches!(
        load_file(&junk_path).unwrap_err(),
        GraphError::Format(_)
    ));

    // A truncated binary file fails typed through the file helpers too.
    let g = sample_graph();
    let full = to_binary(&g);
    let trunc_path = dir.join("truncated.agb");
    std::fs::write(&trunc_path, &full[..full.len() / 2]).unwrap();
    assert!(matches!(
        read_binary_file(&trunc_path).unwrap_err(),
        GraphError::TruncatedBinary { .. }
    ));
    assert!(matches!(
        load_frozen_file(&trunc_path).unwrap_err(),
        GraphError::TruncatedBinary { .. }
    ));

    // And the happy path through the same helpers.
    let good_path = dir.join("good.agb");
    write_binary_file(&g, &good_path).unwrap();
    assert_eq!(load_file(&good_path).unwrap(), g);
    assert_eq!(load_frozen_file(&good_path).unwrap(), g.freeze());

    std::fs::remove_dir_all(&dir).ok();
}
