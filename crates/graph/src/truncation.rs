//! Edge truncation µ(G, k) — Definition 2 of the paper (after Blocki et al.).
//!
//! The truncation operator projects an arbitrary graph onto the set `H_k` of
//! graphs with maximum degree at most `k`. It fixes a canonical ordering over
//! the edges (here: lexicographic on the normalised endpoint pair) and, walking
//! the edges in that order, deletes an edge if **either** endpoint currently
//! has degree greater than `k` (degrees are updated as deletions happen, which
//! is the reading required by the proof of Proposition 1: deleting earlier
//! edges can bring a node's degree back under the bound so later edges
//! survive).
//!
//! Proposition 1 shows that computing the attribute–edge correlation counts
//! `Q_F` on the truncated graph has global sensitivity `2k` under the paper's
//! edge-adjacency notion, which is what makes the Laplace mechanism usable in
//! `LearnCorrelationsDP`.

use crate::graph::{AttributedGraph, Edge};

/// Result of a truncation run: the `k`-bounded graph plus bookkeeping that the
/// experiments (Figure 1) report.
#[derive(Debug, Clone)]
pub struct TruncationOutcome {
    /// The truncated, `k`-bounded graph (nodes and attributes unchanged).
    pub graph: AttributedGraph,
    /// Number of edges that were deleted by the projection.
    pub deleted_edges: usize,
    /// The truncation parameter that was applied.
    pub k: usize,
}

/// Applies the edge-truncation operator µ(G, k).
///
/// The canonical edge ordering is the lexicographic order on `(min(u,v),
/// max(u,v))`, which is a fixed ordering independent of the data values and
/// therefore satisfies Definition 2.
///
/// `k = 0` removes every edge (every edge has endpoints of degree ≥ 1).
#[must_use]
pub fn edge_truncation(g: &AttributedGraph, k: usize) -> TruncationOutcome {
    let mut degrees = g.degrees();
    let mut out = AttributedGraph::new(g.num_nodes(), g.schema());
    out.set_all_attribute_codes(g.attribute_codes())
        .expect("attribute codes of the source graph are always valid");
    let mut deleted = 0usize;
    for Edge { u, v } in g.edges() {
        let (ui, vi) = (u as usize, v as usize);
        if degrees[ui] > k || degrees[vi] > k {
            // Delete the edge: both endpoints lose one degree.
            degrees[ui] -= 1;
            degrees[vi] -= 1;
            deleted += 1;
        } else {
            out.add_edge(u, v)
                .expect("source graph edges are unique and in range");
        }
    }
    TruncationOutcome {
        graph: out,
        deleted_edges: deleted,
        k,
    }
}

/// The data-independent heuristic `k = ⌈n^(1/3)⌉` recommended in Section 3.1.
///
/// Since the number of nodes `n` is public, deriving `k` from it does not
/// consume privacy budget.
#[must_use]
pub fn heuristic_k(num_nodes: usize) -> usize {
    if num_nodes == 0 {
        return 1;
    }
    let k = (num_nodes as f64).powf(1.0 / 3.0).ceil() as usize;
    k.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AttributeSchema;
    use crate::graph::AttributedGraph;

    fn star(n_leaves: usize) -> AttributedGraph {
        let mut g = AttributedGraph::unattributed(n_leaves + 1);
        for v in 1..=n_leaves {
            g.add_edge(0, v as u32).unwrap();
        }
        g
    }

    #[test]
    fn truncation_bounds_every_degree_by_k() {
        let g = star(10);
        for k in 0..=12 {
            let out = edge_truncation(&g, k);
            assert!(out.graph.max_degree() <= k, "k={k}");
            assert_eq!(out.deleted_edges, g.num_edges() - out.graph.num_edges());
            out.graph.check_consistency().unwrap();
        }
    }

    #[test]
    fn truncation_is_identity_when_k_at_least_dmax() {
        let mut g = AttributedGraph::unattributed(5);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        g.add_edge(3, 4).unwrap();
        g.add_edge(0, 4).unwrap();
        let out = edge_truncation(&g, g.max_degree());
        assert_eq!(out.graph.num_edges(), g.num_edges());
        assert_eq!(out.deleted_edges, 0);
        assert_eq!(out.graph.edge_vec(), g.edge_vec());
    }

    #[test]
    fn truncation_with_k_zero_removes_all_edges() {
        let g = star(4);
        let out = edge_truncation(&g, 0);
        assert_eq!(out.graph.num_edges(), 0);
        assert_eq!(out.deleted_edges, 4);
    }

    #[test]
    fn truncation_preserves_attributes_and_node_count() {
        let mut g = AttributedGraph::new(4, AttributeSchema::new(2));
        g.set_attribute_code(0, 2).unwrap();
        g.set_attribute_code(3, 3).unwrap();
        g.add_edge(0, 1).unwrap();
        g.add_edge(0, 2).unwrap();
        g.add_edge(0, 3).unwrap();
        let out = edge_truncation(&g, 1);
        assert_eq!(out.graph.num_nodes(), 4);
        assert_eq!(out.graph.attribute_code(0), 2);
        assert_eq!(out.graph.attribute_code(3), 3);
    }

    #[test]
    fn dynamic_degrees_allow_later_edges_to_survive() {
        // Hub node 0 with degree 3 (k = 2): deleting the first edge in canonical
        // order (0,1) brings the hub's degree to 2, so (0,2) and (0,3) survive.
        let g = star(3);
        let out = edge_truncation(&g, 2);
        assert_eq!(out.graph.num_edges(), 2);
        assert!(!out.graph.has_edge(0, 1));
        assert!(out.graph.has_edge(0, 2));
        assert!(out.graph.has_edge(0, 3));
    }

    #[test]
    fn truncation_only_touches_high_degree_incident_edges() {
        // Square (all degree 2) plus a hub connected to everything.
        let mut g = AttributedGraph::unattributed(5);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        g.add_edge(3, 0).unwrap();
        for v in 0..4 {
            g.add_edge(4, v).unwrap();
        }
        let out = edge_truncation(&g, 3);
        // The square's edges connect nodes of degree 3 <= k and must survive.
        assert!(out.graph.has_edge(0, 1) || out.graph.max_degree() <= 3);
        assert!(out.graph.max_degree() <= 3);
        out.graph.check_consistency().unwrap();
    }

    #[test]
    fn heuristic_k_matches_paper_examples() {
        // Paper Figure 1 uses k = n^(1/3): Last.fm (n=1843) -> 12.xx, Pokec -> 84.
        assert_eq!(heuristic_k(1843), 13); // ceil(12.26)
        assert_eq!(heuristic_k(1788), 13);
        assert_eq!(heuristic_k(592_627), 84);
        assert_eq!(heuristic_k(1), 1);
        assert_eq!(heuristic_k(0), 1);
        assert_eq!(heuristic_k(27), 3);
    }
}
