//! The [`AttributedGraph`] representation.
//!
//! An `AttributedGraph` is an undirected, unweighted simple graph with a fixed
//! node set `{0, …, n-1}` and a `w`-bit attribute code on every node
//! (Section 2.1 of the paper). Adjacency is stored as sorted neighbor lists,
//! which keeps edge existence queries at `O(log d)`, neighbor iteration
//! allocation-free, and common-neighbor counting at `O(d_u + d_v)` — the
//! operations that dominate TriCycLe generation and triangle counting.

use serde::{Deserialize, Serialize};

use crate::attributes::{AttributeSchema, EdgeConfigIndex};
use crate::error::GraphError;
use crate::frozen::FrozenGraph;
use crate::view::GraphView;
use crate::Result;

/// Dense node identifier in `0..n`.
pub type NodeId = u32;

/// An undirected edge; stored with `u <= v` by convention when enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Edge {
    /// First endpoint.
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
}

impl Edge {
    /// Creates an edge, normalising so that `u <= v`.
    #[must_use]
    pub fn new(a: NodeId, b: NodeId) -> Self {
        if a <= b {
            Self { u: a, v: b }
        } else {
            Self { u: b, v: a }
        }
    }

    /// Returns the endpoint that is not `x`, or `None` if `x` is not an endpoint.
    #[must_use]
    pub fn other(&self, x: NodeId) -> Option<NodeId> {
        if x == self.u {
            Some(self.v)
        } else if x == self.v {
            Some(self.u)
        } else {
            None
        }
    }
}

/// An undirected, unweighted, simple graph with binary node attributes.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributedGraph {
    schema: AttributeSchema,
    /// Sorted adjacency lists; `adjacency[u]` holds the neighbors of `u` in
    /// increasing order.
    adjacency: Vec<Vec<NodeId>>,
    /// Attribute code of each node (`f_w` encoding).
    attributes: Vec<u32>,
    /// Number of undirected edges currently in the graph.
    num_edges: usize,
}

impl AttributedGraph {
    /// Creates an empty graph with `n` isolated nodes, all with attribute code 0.
    #[must_use]
    pub fn new(n: usize, schema: AttributeSchema) -> Self {
        Self {
            schema,
            adjacency: vec![Vec::new(); n],
            attributes: vec![0; n],
            num_edges: 0,
        }
    }

    /// Creates an empty unattributed graph (`w = 0`) with `n` isolated nodes.
    #[must_use]
    pub fn unattributed(n: usize) -> Self {
        Self::new(n, AttributeSchema::new(0))
    }

    /// Builds a graph in one shot from edges that are already known to be
    /// **unique and self-loop-free** (e.g. the deduplicated output of the
    /// chunked edge sampler). Costs `O(n + m log d_max)` with sequential
    /// passes instead of `m` binary-search-and-shift insertions, which is
    /// what makes bulk loads of millions of edges cheap.
    ///
    /// The preconditions are verified, not trusted: out-of-range endpoints,
    /// self-loops and duplicates all error (the duplicate check is a free
    /// by-product of sorting the adjacency lists).
    pub fn from_unique_edges(n: usize, schema: AttributeSchema, edges: &[Edge]) -> Result<Self> {
        let mut counts = vec![0usize; n];
        for e in edges {
            for node in [e.u, e.v] {
                if node as usize >= n {
                    return Err(GraphError::NodeOutOfRange { node, num_nodes: n });
                }
            }
            if e.u == e.v {
                return Err(GraphError::SelfLoop { node: e.u });
            }
            counts[e.u as usize] += 1;
            counts[e.v as usize] += 1;
        }
        let mut adjacency: Vec<Vec<NodeId>> =
            counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for e in edges {
            adjacency[e.u as usize].push(e.v);
            adjacency[e.v as usize].push(e.u);
        }
        for (u, list) in adjacency.iter_mut().enumerate() {
            list.sort_unstable();
            if let Some(pair) = list.windows(2).find(|pair| pair[0] == pair[1]) {
                return Err(GraphError::DuplicateEdge {
                    u: u as NodeId,
                    v: pair[0],
                });
            }
        }
        Ok(Self {
            schema,
            adjacency,
            attributes: vec![0; n],
            num_edges: edges.len(),
        })
    }

    /// Re-labels the graph with a new schema and per-node attribute codes,
    /// keeping the edge set. Consumes the graph so the adjacency structure is
    /// reused rather than rebuilt edge by edge.
    pub fn with_attributes(mut self, schema: AttributeSchema, codes: &[u32]) -> Result<Self> {
        self.schema = schema;
        self.set_all_attribute_codes(codes)?;
        Ok(self)
    }

    /// The attribute schema of this graph.
    #[must_use]
    pub fn schema(&self) -> AttributeSchema {
        self.schema
    }

    /// Number of nodes `n = |N|`.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges `m = |E|`.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Returns an iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    fn check_node(&self, v: NodeId) -> Result<()> {
        if (v as usize) < self.num_nodes() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: v,
                num_nodes: self.num_nodes(),
            })
        }
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range (use [`Self::nodes`] to iterate safely).
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v as usize].len()
    }

    /// Allocation-free iterator over all node degrees, by node id.
    ///
    /// Hot paths that only fold over the sequence (histograms, maxima, sums)
    /// should prefer this over the allocating [`Self::degrees`].
    pub fn degree_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.adjacency.iter().map(Vec::len)
    }

    /// The degrees of all nodes, indexed by node id (routed through
    /// [`Self::degree_iter`]).
    #[must_use]
    pub fn degrees(&self) -> Vec<usize> {
        self.degree_iter().collect()
    }

    /// Maximum degree `d_max` (0 for an empty graph).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.degree_iter().max().unwrap_or(0)
    }

    /// Average degree `2m / n` (0 for an empty graph).
    #[must_use]
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.num_nodes() as f64
        }
    }

    /// The sorted neighbor list `Γ(v)` of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adjacency[v as usize]
    }

    /// Returns `true` if the undirected edge `(u, v)` is present.
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if (u as usize) >= self.num_nodes() || (v as usize) >= self.num_nodes() {
            return false;
        }
        // Search the shorter adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adjacency[a as usize].binary_search(&b).is_ok()
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Returns an error on self-loops, duplicate edges, or out-of-range nodes.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        match self.adjacency[u as usize].binary_search(&v) {
            Ok(_) => Err(GraphError::DuplicateEdge { u, v }),
            Err(pos_u) => {
                self.adjacency[u as usize].insert(pos_u, v);
                let pos_v = self.adjacency[v as usize]
                    .binary_search(&u)
                    .expect_err("adjacency lists out of sync");
                self.adjacency[v as usize].insert(pos_v, u);
                self.num_edges += 1;
                Ok(())
            }
        }
    }

    /// Adds the edge `(u, v)` if it is absent and not a self-loop.
    ///
    /// Returns `true` if the edge was inserted. Out-of-range nodes still error.
    pub fn try_add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool> {
        match self.add_edge(u, v) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge { .. }) | Err(GraphError::SelfLoop { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Removes the undirected edge `(u, v)`.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        self.check_node(u)?;
        self.check_node(v)?;
        match self.adjacency[u as usize].binary_search(&v) {
            Err(_) => Err(GraphError::MissingEdge { u, v }),
            Ok(pos_u) => {
                self.adjacency[u as usize].remove(pos_u);
                let pos_v = self.adjacency[v as usize]
                    .binary_search(&u)
                    .expect("adjacency lists out of sync");
                self.adjacency[v as usize].remove(pos_v);
                self.num_edges -= 1;
                Ok(())
            }
        }
    }

    /// Enumerates all edges in canonical (lexicographic) order with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as NodeId;
            nbrs.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| Edge { u, v })
        })
    }

    /// Collects all edges into a vector (canonical order).
    #[must_use]
    pub fn edge_vec(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.num_edges);
        out.extend(self.edges());
        out
    }

    /// Number of common neighbors `|Γ(u) ∩ Γ(v)|`, computed by a sorted merge.
    #[must_use]
    pub fn common_neighbor_count(&self, u: NodeId, v: NodeId) -> usize {
        let a = &self.adjacency[u as usize];
        let b = &self.adjacency[v as usize];
        let mut i = 0;
        let mut j = 0;
        let mut count = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// The attribute code (`f_w` encoding) of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn attribute_code(&self, v: NodeId) -> u32 {
        self.attributes[v as usize]
    }

    /// Attribute codes for all nodes, indexed by node id.
    #[must_use]
    pub fn attribute_codes(&self) -> &[u32] {
        &self.attributes
    }

    /// Sets the attribute code of node `v`.
    pub fn set_attribute_code(&mut self, v: NodeId, code: u32) -> Result<()> {
        self.check_node(v)?;
        self.schema.validate_code(code)?;
        self.attributes[v as usize] = code;
        Ok(())
    }

    /// Sets the attribute codes of all nodes at once.
    pub fn set_all_attribute_codes(&mut self, codes: &[u32]) -> Result<()> {
        if codes.len() != self.num_nodes() {
            return Err(GraphError::InvalidParameter(format!(
                "expected {} attribute codes, got {}",
                self.num_nodes(),
                codes.len()
            )));
        }
        for &c in codes {
            self.schema.validate_code(c)?;
        }
        self.attributes.copy_from_slice(codes);
        Ok(())
    }

    /// The edge-configuration index `F_w(x_u, x_v)` of an edge's endpoints.
    ///
    /// The edge does not need to be present; the value depends only on the
    /// endpoints' current attribute codes.
    #[must_use]
    pub fn edge_config(&self, u: NodeId, v: NodeId) -> EdgeConfigIndex {
        self.schema
            .edge_config(self.attributes[u as usize], self.attributes[v as usize])
    }

    /// Snapshots this graph into an immutable CSR [`FrozenGraph`] for the
    /// read-only analysis phase (metrics, evaluation, serving). `O(n + m)`.
    ///
    /// Every read accessor of the snapshot returns exactly the values this
    /// graph would, and computations over the snapshot are bit-identical to
    /// the same computations here — freezing is free of semantic drift.
    #[must_use]
    pub fn freeze(&self) -> FrozenGraph {
        FrozenGraph::from_graph(self)
    }

    /// Removes every edge while keeping nodes and attributes.
    pub fn clear_edges(&mut self) {
        for nbrs in &mut self.adjacency {
            nbrs.clear();
        }
        self.num_edges = 0;
    }

    /// Verifies internal invariants (sorted, symmetric adjacency, consistent
    /// edge count). Intended for tests and debug assertions.
    pub fn check_consistency(&self) -> Result<()> {
        let mut half_edges = 0usize;
        for (u, nbrs) in self.adjacency.iter().enumerate() {
            let mut prev: Option<NodeId> = None;
            for &v in nbrs {
                if (v as usize) >= self.num_nodes() {
                    return Err(GraphError::NodeOutOfRange {
                        node: v,
                        num_nodes: self.num_nodes(),
                    });
                }
                if v as usize == u {
                    return Err(GraphError::SelfLoop { node: v });
                }
                if let Some(p) = prev {
                    if p >= v {
                        return Err(GraphError::InvalidParameter(format!(
                            "adjacency list of node {u} is not strictly sorted"
                        )));
                    }
                }
                prev = Some(v);
                if self.adjacency[v as usize]
                    .binary_search(&(u as NodeId))
                    .is_err()
                {
                    return Err(GraphError::InvalidParameter(format!(
                        "edge ({u}, {v}) is not symmetric"
                    )));
                }
                half_edges += 1;
            }
        }
        if half_edges != 2 * self.num_edges {
            return Err(GraphError::InvalidParameter(format!(
                "edge count {} does not match adjacency ({} half edges)",
                self.num_edges, half_edges
            )));
        }
        Ok(())
    }
}

impl GraphView for AttributedGraph {
    fn num_nodes(&self) -> usize {
        AttributedGraph::num_nodes(self)
    }
    fn num_edges(&self) -> usize {
        AttributedGraph::num_edges(self)
    }
    fn schema(&self) -> AttributeSchema {
        AttributedGraph::schema(self)
    }
    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        AttributedGraph::neighbors(self, v)
    }
    fn attribute_code(&self, v: NodeId) -> u32 {
        AttributedGraph::attribute_code(self, v)
    }
    fn degree(&self, v: NodeId) -> usize {
        AttributedGraph::degree(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_graph() -> AttributedGraph {
        let mut g = AttributedGraph::new(3, AttributeSchema::new(1));
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(0, 2).unwrap();
        g
    }

    #[test]
    fn new_graph_is_empty() {
        let g = AttributedGraph::new(5, AttributeSchema::new(2));
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert!(g.check_consistency().is_ok());
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = AttributedGraph::unattributed(0);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_and_query_edges() {
        let g = triangle_graph();
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.avg_degree(), 2.0);
        assert_eq!(g.max_degree(), 2);
        g.check_consistency().unwrap();
    }

    #[test]
    fn has_edge_out_of_range_is_false() {
        let g = triangle_graph();
        assert!(!g.has_edge(0, 99));
        assert!(!g.has_edge(99, 0));
    }

    #[test]
    fn self_loops_and_duplicates_rejected() {
        let mut g = AttributedGraph::unattributed(3);
        assert!(matches!(
            g.add_edge(1, 1),
            Err(GraphError::SelfLoop { node: 1 })
        ));
        g.add_edge(0, 1).unwrap();
        assert!(matches!(
            g.add_edge(0, 1),
            Err(GraphError::DuplicateEdge { .. })
        ));
        assert!(matches!(
            g.add_edge(1, 0),
            Err(GraphError::DuplicateEdge { .. })
        ));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn out_of_range_nodes_rejected() {
        let mut g = AttributedGraph::unattributed(3);
        assert!(matches!(
            g.add_edge(0, 3),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            g.remove_edge(5, 0),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn try_add_edge_reports_insertion() {
        let mut g = AttributedGraph::unattributed(3);
        assert!(g.try_add_edge(0, 1).unwrap());
        assert!(!g.try_add_edge(0, 1).unwrap());
        assert!(!g.try_add_edge(2, 2).unwrap());
        assert!(g.try_add_edge(1, 2).unwrap());
        assert!(g.try_add_edge(0, 99).is_err());
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn remove_edge_works_and_errors_on_missing() {
        let mut g = triangle_graph();
        g.remove_edge(1, 0).unwrap();
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.num_edges(), 2);
        assert!(matches!(
            g.remove_edge(0, 1),
            Err(GraphError::MissingEdge { .. })
        ));
        g.check_consistency().unwrap();
    }

    #[test]
    fn edges_are_canonical_and_unique() {
        let g = triangle_graph();
        let edges = g.edge_vec();
        assert_eq!(
            edges,
            vec![
                Edge { u: 0, v: 1 },
                Edge { u: 0, v: 2 },
                Edge { u: 1, v: 2 }
            ]
        );
    }

    #[test]
    fn edge_constructor_normalises() {
        let e = Edge::new(5, 2);
        assert_eq!(e, Edge { u: 2, v: 5 });
        assert_eq!(e.other(2), Some(5));
        assert_eq!(e.other(5), Some(2));
        assert_eq!(e.other(7), None);
    }

    #[test]
    fn common_neighbors_counts_correctly() {
        let mut g = AttributedGraph::unattributed(5);
        // Star around 0 plus edge 1-2: common neighbors of 1 and 2 is {0}.
        for v in 1..5 {
            g.add_edge(0, v).unwrap();
        }
        g.add_edge(1, 2).unwrap();
        assert_eq!(g.common_neighbor_count(1, 2), 1);
        assert_eq!(g.common_neighbor_count(3, 4), 1);
        assert_eq!(g.common_neighbor_count(0, 1), 1); // node 2 adjacent to both
        assert_eq!(g.common_neighbor_count(0, 3), 0);
    }

    #[test]
    fn attributes_set_and_get() {
        let mut g = AttributedGraph::new(3, AttributeSchema::new(2));
        g.set_attribute_code(0, 3).unwrap();
        g.set_attribute_code(1, 1).unwrap();
        assert_eq!(g.attribute_code(0), 3);
        assert_eq!(g.attribute_code(1), 1);
        assert_eq!(g.attribute_code(2), 0);
        assert!(g.set_attribute_code(0, 4).is_err());
        assert!(g.set_attribute_code(9, 0).is_err());
    }

    #[test]
    fn set_all_attribute_codes_validates() {
        let mut g = AttributedGraph::new(3, AttributeSchema::new(1));
        assert!(g.set_all_attribute_codes(&[0, 1]).is_err());
        assert!(g.set_all_attribute_codes(&[0, 1, 2]).is_err());
        g.set_all_attribute_codes(&[0, 1, 1]).unwrap();
        assert_eq!(g.attribute_codes(), &[0, 1, 1]);
    }

    #[test]
    fn edge_config_is_direction_independent() {
        let mut g = AttributedGraph::new(2, AttributeSchema::new(2));
        g.set_attribute_code(0, 1).unwrap();
        g.set_attribute_code(1, 3).unwrap();
        assert_eq!(g.edge_config(0, 1), g.edge_config(1, 0));
    }

    #[test]
    fn clear_edges_keeps_nodes_and_attributes() {
        let mut g = triangle_graph();
        g.set_attribute_code(0, 1).unwrap();
        g.clear_edges();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.attribute_code(0), 1);
        g.check_consistency().unwrap();
    }

    #[test]
    fn degrees_vector_matches_individual_queries() {
        let g = triangle_graph();
        let degs = g.degrees();
        for v in g.nodes() {
            assert_eq!(degs[v as usize], g.degree(v));
        }
    }
}
