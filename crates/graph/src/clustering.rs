//! Local and global clustering coefficients.
//!
//! Section 5.1 of the paper evaluates synthetic graphs with two clustering
//! measures: the *global clustering coefficient* (transitivity)
//! `C(G) = 3 n_Δ / n_W`, and the *average of the local clustering
//! coefficients* `C̄ = (1/n) Σ_i C_i` with
//! `C_i = 2 |{e_jk : v_j, v_k ∈ Γ(v_i)}| / (d_i (d_i - 1))`.
//! Figure 3 additionally plots the CCDF of the local coefficients.

use crate::triangles::{count_triangles, count_wedges, triangles_per_node};
use crate::view::GraphView;

/// Local clustering coefficient of every node.
///
/// Nodes with degree `< 2` have a local coefficient of `0`, following the
/// convention used by the paper's evaluation (they contribute no wedges).
#[must_use]
pub fn local_clustering_coefficients<G: GraphView>(g: &G) -> Vec<f64> {
    let tri = triangles_per_node(g);
    g.nodes()
        .map(|v| {
            let d = g.degree(v);
            if d < 2 {
                0.0
            } else {
                2.0 * tri[v as usize] as f64 / (d as f64 * (d as f64 - 1.0))
            }
        })
        .collect()
}

/// Average of the local clustering coefficients, `C̄`.
#[must_use]
pub fn average_local_clustering<G: GraphView>(g: &G) -> f64 {
    if g.num_nodes() == 0 {
        return 0.0;
    }
    let coeffs = local_clustering_coefficients(g);
    coeffs.iter().sum::<f64>() / g.num_nodes() as f64
}

/// Global clustering coefficient (transitivity), `C(G) = 3 n_Δ / n_W`.
///
/// Returns `0` when the graph has no wedges.
#[must_use]
pub fn global_clustering<G: GraphView>(g: &G) -> f64 {
    let wedges = count_wedges(g);
    if wedges == 0 {
        0.0
    } else {
        3.0 * count_triangles(g) as f64 / wedges as f64
    }
}

/// Degree-wise clustering coefficients `c_d` as used by the BTER model
/// discussion in Section 3.3: for each degree `d`, the ratio of (three times)
/// the triangles involving nodes of degree `d` to the wedges centered at nodes
/// of degree `d`. Returned as a vector indexed by degree; degrees with no
/// wedges get `0`.
#[must_use]
pub fn degreewise_clustering<G: GraphView>(g: &G) -> Vec<f64> {
    let max_d = g.max_degree();
    let mut tri_by_deg = vec![0.0f64; max_d + 1];
    let mut wedge_by_deg = vec![0.0f64; max_d + 1];
    let tri = triangles_per_node(g);
    for v in g.nodes() {
        let d = g.degree(v);
        tri_by_deg[d] += tri[v as usize] as f64;
        wedge_by_deg[d] += d as f64 * (d as f64 - 1.0) / 2.0;
    }
    tri_by_deg
        .into_iter()
        .zip(wedge_by_deg)
        .map(|(t, w)| if w > 0.0 { t / w } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AttributedGraph;

    fn complete_graph(n: usize) -> AttributedGraph {
        let mut g = AttributedGraph::unattributed(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                g.add_edge(u, v).unwrap();
            }
        }
        g
    }

    #[test]
    fn complete_graph_has_clustering_one() {
        let g = complete_graph(5);
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
        assert!((average_local_clustering(&g) - 1.0).abs() < 1e-12);
        assert!(local_clustering_coefficients(&g)
            .iter()
            .all(|&c| (c - 1.0).abs() < 1e-12));
    }

    #[test]
    fn tree_has_clustering_zero() {
        let mut g = AttributedGraph::unattributed(6);
        for v in 1..6 {
            g.add_edge(0, v).unwrap();
        }
        assert_eq!(global_clustering(&g), 0.0);
        assert_eq!(average_local_clustering(&g), 0.0);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        assert_eq!(
            average_local_clustering(&AttributedGraph::unattributed(0)),
            0.0
        );
        assert_eq!(global_clustering(&AttributedGraph::unattributed(1)), 0.0);
        let mut pair = AttributedGraph::unattributed(2);
        pair.add_edge(0, 1).unwrap();
        assert_eq!(average_local_clustering(&pair), 0.0);
    }

    #[test]
    fn triangle_with_pendant() {
        // Triangle 0-1-2 plus pendant edge 2-3.
        let mut g = AttributedGraph::unattributed(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(0, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        let local = local_clustering_coefficients(&g);
        assert!((local[0] - 1.0).abs() < 1e-12);
        assert!((local[1] - 1.0).abs() < 1e-12);
        // Node 2 has degree 3 and 1 triangle among its neighbors: 2*1/(3*2) = 1/3.
        assert!((local[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local[3], 0.0);
        assert!((average_local_clustering(&g) - (1.0 + 1.0 + 1.0 / 3.0) / 4.0).abs() < 1e-12);
        // Transitivity: 3 triangles-as-closed-wedges / wedges = 3*1 / (1+1+3+0) = 3/5.
        assert!((global_clustering(&g) - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn degreewise_clustering_of_complete_graph() {
        let g = complete_graph(4);
        let cd = degreewise_clustering(&g);
        // All nodes have degree 3 and coefficient 1.
        assert_eq!(cd.len(), 4);
        assert!((cd[3] - 1.0).abs() < 1e-12);
        assert_eq!(cd[0], 0.0);
    }
}
