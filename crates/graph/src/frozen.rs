//! The immutable CSR snapshot of an attributed graph.
//!
//! The pipeline's read-only phase — TriCycLe acceptance scoring, every metric
//! in `agmdp-metrics`, the evaluation harness and the service's
//! `GET /evaluate` — traverses a graph that will never change again. The
//! mutable [`AttributedGraph`] pays for its
//! insertability with one heap allocation per node (`Vec<Vec<NodeId>>`),
//! which scatters neighbor lists across the heap; [`FrozenGraph`] is the
//! same graph *frozen* into three flat arrays (compressed sparse row):
//!
//! * `offsets[v] .. offsets[v + 1]` indexes node `v`'s slice of `neighbors`,
//! * `neighbors` holds every (half-)edge endpoint, sorted within each node,
//! * `attributes[v]` is node `v`'s attribute code.
//!
//! Degrees become two adjacent array reads, neighbor iteration is a single
//! contiguous scan, and whole-graph traversals (triangle counting, degree
//! histograms) stream linearly through memory. Freezing is `O(n + m)` and
//! performed once per graph; thawing reconstructs an [`AttributedGraph`]
//! equal to the original.
//!
//! The snapshot is also the in-memory image of the binary `.agb` interchange
//! format (see [`crate::io`]): reading a binary file produces a `FrozenGraph`
//! without any re-sorting or re-indexing.

use crate::attributes::{AttributeSchema, EdgeConfigIndex};
use crate::error::GraphError;
use crate::graph::{AttributedGraph, Edge, NodeId};
use crate::view::GraphView;
use crate::Result;

/// An immutable attributed graph in compressed-sparse-row form.
///
/// Construct one with [`AttributedGraph::freeze`], [`FrozenGraph::from_graph`]
/// or by reading a binary graph file ([`crate::io::from_binary`]). All read
/// accessors mirror `AttributedGraph`'s and return identical values; the
/// [`GraphView`] impl lets every analysis function accept either
/// representation.
///
/// ```
/// use agmdp_graph::{AttributedGraph, GraphView};
///
/// let mut g = AttributedGraph::unattributed(4);
/// g.add_edge(0, 1).unwrap();
/// g.add_edge(1, 2).unwrap();
/// g.add_edge(2, 0).unwrap();
/// let frozen = g.freeze();
/// assert_eq!(frozen.num_edges(), 3);
/// assert_eq!(frozen.neighbors(2), &[0, 1]);
/// assert!(frozen.has_edge(0, 2));
/// assert_eq!(agmdp_graph::triangles::count_triangles(&frozen), 1);
/// assert_eq!(frozen.thaw(), g);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenGraph {
    schema: AttributeSchema,
    /// `offsets[v]..offsets[v+1]` is node `v`'s slice of `neighbors`;
    /// `offsets.len() == n + 1`, `offsets[0] == 0`, `offsets[n] == 2m`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor lists (`2m` entries).
    neighbors: Vec<NodeId>,
    /// Attribute code of each node (`f_w` encoding), `n` entries.
    attributes: Vec<u32>,
    /// Number of undirected edges (`neighbors.len() / 2`).
    num_edges: usize,
}

impl FrozenGraph {
    /// Snapshots `g` into CSR form. `O(n + m)`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX / 2` edges (the CSR
    /// offsets are 32-bit; at the pipeline's million-node scale this bound is
    /// three orders of magnitude away).
    #[must_use]
    pub fn from_graph(g: &AttributedGraph) -> Self {
        let half_edges = 2 * g.num_edges();
        assert!(
            u32::try_from(half_edges).is_ok(),
            "graph too large to freeze: {half_edges} half-edges exceed u32 offsets"
        );
        let mut offsets = Vec::with_capacity(g.num_nodes() + 1);
        let mut neighbors = Vec::with_capacity(half_edges);
        offsets.push(0u32);
        for v in g.nodes() {
            neighbors.extend_from_slice(g.neighbors(v));
            offsets.push(neighbors.len() as u32);
        }
        Self {
            schema: g.schema(),
            offsets,
            neighbors,
            attributes: g.attribute_codes().to_vec(),
            num_edges: g.num_edges(),
        }
    }

    /// Builds a snapshot directly from CSR arrays, validating every
    /// structural invariant (used by the binary graph reader; a file that
    /// passes its checksum can still encode an inconsistent graph).
    ///
    /// Requirements: `offsets` has `n + 1` monotone entries starting at 0 and
    /// ending at `neighbors.len()` (which must be even); each node's slice is
    /// strictly sorted, in-range, self-loop-free and symmetric; `attributes`
    /// has `n` codes valid under `schema`.
    pub fn from_csr(
        schema: AttributeSchema,
        offsets: Vec<u32>,
        neighbors: Vec<NodeId>,
        attributes: Vec<u32>,
    ) -> Result<Self> {
        validate_csr_structure(&offsets, &neighbors)?;
        validate_attribute_codes(schema, &attributes, offsets.len() - 1)?;
        let num_edges = neighbors.len() / 2;
        Ok(Self {
            schema,
            offsets,
            neighbors,
            attributes,
            num_edges,
        })
    }

    /// Builds a snapshot from CSR arrays whose invariants the caller has
    /// already established (used by [`crate::mmap::FrozenView::to_frozen`],
    /// whose slices were validated at view construction) — skips the
    /// `O(n + m log d)` re-validation of [`FrozenGraph::from_csr`].
    pub(crate) fn from_csr_unchecked(
        schema: AttributeSchema,
        offsets: Vec<u32>,
        neighbors: Vec<NodeId>,
        attributes: Vec<u32>,
        num_edges: usize,
    ) -> Self {
        debug_assert!(!offsets.is_empty() && neighbors.len() == 2 * num_edges);
        Self {
            schema,
            offsets,
            neighbors,
            attributes,
            num_edges,
        }
    }

    /// Reconstructs a mutable [`AttributedGraph`] equal to the graph this
    /// snapshot was frozen from (adjacency lists come back sorted, so
    /// `frozen.thaw() == original` holds exactly).
    #[must_use]
    pub fn thaw(&self) -> AttributedGraph {
        let mut g = AttributedGraph::new(self.num_nodes(), self.schema);
        g.set_all_attribute_codes(&self.attributes)
            .expect("frozen attribute codes are schema-valid");
        for e in self.edges() {
            g.add_edge(e.u, e.v)
                .expect("frozen snapshot contains no duplicate edges or self-loops");
        }
        g
    }

    /// The attribute schema of this graph.
    #[must_use]
    pub fn schema(&self) -> AttributeSchema {
        self.schema
    }

    /// Number of nodes `n = |N|`.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m = |E|`.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// Degree of node `v` — two adjacent offset reads, no indirection.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Allocation-free iterator over all node degrees, by node id.
    pub fn degree_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.offsets.windows(2).map(|w| (w[1] - w[0]) as usize)
    }

    /// The sorted neighbor list `Γ(v)` of node `v` — a contiguous slice of
    /// the CSR array.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Returns `true` if the undirected edge `(u, v)` is present
    /// (binary search of the shorter endpoint's slice; out-of-range
    /// endpoints return `false`).
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        GraphView::has_edge(self, u, v)
    }

    /// Number of common neighbors `|Γ(u) ∩ Γ(v)|` by sorted merge.
    #[must_use]
    pub fn common_neighbor_count(&self, u: NodeId, v: NodeId) -> usize {
        GraphView::common_neighbor_count(self, u, v)
    }

    /// Enumerates all edges in canonical (lexicographic) order with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        GraphView::edges(self)
    }

    /// The degrees of all nodes, indexed by node id (allocates; prefer
    /// [`FrozenGraph::degree_iter`] on hot paths).
    #[must_use]
    pub fn degrees(&self) -> Vec<usize> {
        self.degree_iter().collect()
    }

    /// Maximum degree `d_max` (0 for an empty graph).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.degree_iter().max().unwrap_or(0)
    }

    /// Average degree `2m / n` (0 for an empty graph).
    #[must_use]
    pub fn avg_degree(&self) -> f64 {
        GraphView::avg_degree(self)
    }

    /// The attribute code (`f_w` encoding) of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn attribute_code(&self, v: NodeId) -> u32 {
        self.attributes[v as usize]
    }

    /// Attribute codes for all nodes, indexed by node id.
    #[must_use]
    pub fn attribute_codes(&self) -> &[u32] {
        &self.attributes
    }

    /// The edge-configuration index `F_w(x_u, x_v)` of an edge's endpoints.
    #[must_use]
    pub fn edge_config(&self, u: NodeId, v: NodeId) -> EdgeConfigIndex {
        GraphView::edge_config(self, u, v)
    }

    /// The raw CSR arrays `(offsets, neighbors, attributes)` — the exact
    /// payload of the binary graph format.
    #[must_use]
    pub fn csr_parts(&self) -> (&[u32], &[NodeId], &[u32]) {
        (&self.offsets, &self.neighbors, &self.attributes)
    }
}

/// Validates every structural CSR invariant over raw slices — shared by
/// [`FrozenGraph::from_csr`] (owned deserialisation) and
/// [`crate::mmap::FrozenView::new`] (zero-copy views), so both paths accept
/// and reject exactly the same array contents.
///
/// Checks: non-empty offsets starting at 0 and ending at `neighbors.len()`
/// (which must be even), non-decreasing offsets, each node's list strictly
/// sorted / in-range / self-loop-free, and edge symmetry.
pub(crate) fn validate_csr_structure(offsets: &[u32], neighbors: &[NodeId]) -> Result<()> {
    let invalid = |msg: String| GraphError::Format(format!("invalid CSR graph: {msg}"));
    if offsets.is_empty() {
        return Err(invalid("empty offsets array".into()));
    }
    let n = offsets.len() - 1;
    if offsets[0] != 0 {
        return Err(invalid(format!(
            "offsets must start at 0, got {}",
            offsets[0]
        )));
    }
    if *offsets.last().expect("non-empty") as usize != neighbors.len() {
        return Err(invalid(format!(
            "final offset {} does not match {} neighbor entries",
            offsets.last().expect("non-empty"),
            neighbors.len()
        )));
    }
    if neighbors.len() % 2 != 0 {
        return Err(invalid(format!(
            "odd half-edge count {} (undirected graphs store each edge twice)",
            neighbors.len()
        )));
    }
    for w in offsets.windows(2) {
        if w[1] < w[0] {
            return Err(invalid("offsets must be non-decreasing".into()));
        }
    }
    let list = |v: usize| &neighbors[offsets[v] as usize..offsets[v + 1] as usize];
    // Per-list structure: strictly sorted, in range, no self-loops.
    for v in 0..n {
        let mut prev: Option<NodeId> = None;
        for &u in list(v) {
            if (u as usize) >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: u,
                    num_nodes: n,
                });
            }
            if u as usize == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            if let Some(p) = prev {
                if p >= u {
                    return Err(invalid(format!(
                        "neighbor list of node {v} is not strictly sorted"
                    )));
                }
            }
            prev = Some(u);
        }
    }
    // Symmetry: every half-edge has its mirror.
    for v in 0..n {
        for &u in list(v) {
            if list(u as usize).binary_search(&(v as NodeId)).is_err() {
                return Err(invalid(format!("edge ({v}, {u}) is not symmetric")));
            }
        }
    }
    Ok(())
}

/// Validates that `attributes` holds exactly `n` codes, each representable
/// under `schema` — the attribute half of the CSR validation, shared with
/// the zero-copy view.
pub(crate) fn validate_attribute_codes(
    schema: AttributeSchema,
    attributes: &[u32],
    n: usize,
) -> Result<()> {
    if attributes.len() != n {
        return Err(GraphError::Format(format!(
            "invalid CSR graph: {} attribute codes for {n} nodes",
            attributes.len()
        )));
    }
    for &code in attributes {
        schema.validate_code(code)?;
    }
    Ok(())
}

impl GraphView for FrozenGraph {
    fn num_nodes(&self) -> usize {
        FrozenGraph::num_nodes(self)
    }
    fn num_edges(&self) -> usize {
        FrozenGraph::num_edges(self)
    }
    fn schema(&self) -> AttributeSchema {
        FrozenGraph::schema(self)
    }
    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        FrozenGraph::neighbors(self, v)
    }
    fn attribute_code(&self, v: NodeId) -> u32 {
        FrozenGraph::attribute_code(self, v)
    }
    fn degree(&self, v: NodeId) -> usize {
        FrozenGraph::degree(self, v)
    }
}

impl From<&AttributedGraph> for FrozenGraph {
    fn from(g: &AttributedGraph) -> Self {
        Self::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AttributedGraph {
        let mut g = AttributedGraph::new(5, AttributeSchema::new(2));
        g.set_all_attribute_codes(&[0, 1, 2, 3, 1]).unwrap();
        for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)] {
            g.add_edge(u, v).unwrap();
        }
        g
    }

    #[test]
    fn freeze_preserves_every_read_accessor() {
        let g = sample();
        let f = g.freeze();
        assert_eq!(f.num_nodes(), g.num_nodes());
        assert_eq!(f.num_edges(), g.num_edges());
        assert_eq!(f.schema(), g.schema());
        assert_eq!(f.max_degree(), g.max_degree());
        assert_eq!(f.avg_degree(), g.avg_degree());
        assert_eq!(f.degrees(), g.degrees());
        assert_eq!(f.attribute_codes(), g.attribute_codes());
        for v in g.nodes() {
            assert_eq!(f.neighbors(v), g.neighbors(v));
            assert_eq!(f.degree(v), g.degree(v));
            assert_eq!(f.attribute_code(v), g.attribute_code(v));
        }
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(f.has_edge(u, v), g.has_edge(u, v));
                if u != v {
                    assert_eq!(f.common_neighbor_count(u, v), g.common_neighbor_count(u, v));
                    assert_eq!(f.edge_config(u, v), g.edge_config(u, v));
                }
            }
        }
        let fe: Vec<Edge> = f.edges().collect();
        assert_eq!(fe, g.edge_vec());
    }

    #[test]
    fn thaw_roundtrips_exactly() {
        let g = sample();
        assert_eq!(g.freeze().thaw(), g);
        let empty = AttributedGraph::unattributed(0);
        assert_eq!(empty.freeze().thaw(), empty);
        let isolated = AttributedGraph::unattributed(3);
        assert_eq!(isolated.freeze().thaw(), isolated);
    }

    #[test]
    fn empty_and_edgeless_graphs_freeze() {
        let f = AttributedGraph::unattributed(0).freeze();
        assert_eq!(f.num_nodes(), 0);
        assert_eq!(f.num_edges(), 0);
        assert_eq!(f.max_degree(), 0);
        assert_eq!(f.avg_degree(), 0.0);
        assert_eq!(f.edges().count(), 0);
        let f = AttributedGraph::unattributed(4).freeze();
        assert_eq!(f.num_nodes(), 4);
        assert_eq!(f.degrees(), vec![0; 4]);
    }

    #[test]
    fn from_csr_accepts_valid_and_rejects_broken_inputs() {
        let g = sample();
        let f = g.freeze();
        let (offsets, neighbors, attributes) = f.csr_parts();
        let rebuilt = FrozenGraph::from_csr(
            g.schema(),
            offsets.to_vec(),
            neighbors.to_vec(),
            attributes.to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, f);

        let schema = AttributeSchema::new(0);
        // Empty offsets.
        assert!(FrozenGraph::from_csr(schema, vec![], vec![], vec![]).is_err());
        // Final offset disagrees with the neighbor array.
        assert!(FrozenGraph::from_csr(schema, vec![0, 2], vec![1], vec![0]).is_err());
        // Self-loop.
        assert!(matches!(
            FrozenGraph::from_csr(schema, vec![0, 2, 2], vec![0, 1], vec![0, 0]),
            Err(GraphError::SelfLoop { .. })
        ));
        // Asymmetric edge: 0 -> 1 without 1 -> 0.
        assert!(FrozenGraph::from_csr(schema, vec![0, 1, 2], vec![1, 0], vec![0, 0]).is_ok());
        assert!(FrozenGraph::from_csr(schema, vec![0, 1, 1], vec![1], vec![0, 0]).is_err());
        // Out-of-range neighbor.
        assert!(matches!(
            FrozenGraph::from_csr(schema, vec![0, 1, 2], vec![5, 0], vec![0, 0]),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        // Unsorted neighbor list.
        assert!(
            FrozenGraph::from_csr(schema, vec![0, 2, 3, 4], vec![2, 1, 0, 0], vec![0, 0, 0])
                .is_err()
        );
        // Attribute code outside the schema.
        assert!(matches!(
            FrozenGraph::from_csr(AttributeSchema::new(1), vec![0, 0], vec![], vec![7]),
            Err(GraphError::AttributeCodeOutOfRange { .. })
        ));
        // Decreasing offsets.
        assert!(
            FrozenGraph::from_csr(schema, vec![0, 2, 1, 2], vec![1, 0], vec![0, 0, 0]).is_err()
        );
    }

    #[test]
    fn generic_consumers_accept_both_representations() {
        fn wedge_sum<G: GraphView>(g: &G) -> usize {
            g.degree_iter().map(|d| d * d.saturating_sub(1) / 2).sum()
        }
        let g = sample();
        assert_eq!(wedge_sum(&g), wedge_sum(&g.freeze()));
    }
}
