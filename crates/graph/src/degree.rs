//! Degree sequences, degree distributions and CCDFs.
//!
//! The structural models of Section 3.3 are parameterised by the *unordered*
//! degree sequence `S` of the input graph; the evaluation (Section 5.1)
//! compares degree distributions via the Kolmogorov–Smirnov statistic and
//! Hellinger distance, both of which are computed from the normalised degree
//! histogram. This module provides those primitives.

use serde::{Deserialize, Serialize};

use crate::view::GraphView;

/// The unordered degree sequence of a graph together with derived views.
///
/// The sequence stores one entry per node. The paper's constrained-inference
/// estimator (Appendix C.3.1) operates on the sequence sorted in
/// non-decreasing order; [`Self::sorted`] provides that view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeSequence {
    degrees: Vec<f64>,
}

impl DegreeSequence {
    /// Builds the degree sequence of `g` (one entry per node, by node id).
    ///
    /// Accepts any [`GraphView`] — the mutable build-phase graph or the
    /// frozen CSR snapshot — and streams degrees through the allocation-free
    /// iterator (no intermediate `Vec<usize>`).
    #[must_use]
    pub fn from_graph<G: GraphView>(g: &G) -> Self {
        Self {
            degrees: g.degree_iter().map(|d| d as f64).collect(),
        }
    }

    /// Wraps an existing (possibly noisy, fractional) sequence.
    #[must_use]
    pub fn from_vec(degrees: Vec<f64>) -> Self {
        Self { degrees }
    }

    /// Number of nodes described by the sequence.
    #[must_use]
    pub fn len(&self) -> usize {
        self.degrees.len()
    }

    /// True when the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.degrees.is_empty()
    }

    /// Raw degrees, indexed by node id (or arbitrary order for noisy sequences).
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.degrees
    }

    /// The sequence sorted in non-decreasing order.
    #[must_use]
    pub fn sorted(&self) -> Vec<f64> {
        let mut s = self.degrees.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("degrees must not be NaN"));
        s
    }

    /// Sum of all degrees (`2m` for an integral sequence read off a graph).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.degrees.iter().sum()
    }

    /// Implied number of edges, `total() / 2`.
    #[must_use]
    pub fn implied_edges(&self) -> f64 {
        self.total() / 2.0
    }

    /// Maximum degree in the sequence (0 for an empty sequence).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.degrees.iter().copied().fold(0.0, f64::max)
    }

    /// Rounds every entry to the nearest integer in `0..=n-1` where `n` is the
    /// sequence length, as done after constrained inference in Algorithm 6.
    #[must_use]
    pub fn rounded_clamped(&self) -> Vec<usize> {
        let cap = self.degrees.len().saturating_sub(1);
        self.degrees
            .iter()
            .map(|&d| {
                let r = d.round();
                if r < 0.0 {
                    0
                } else {
                    (r as usize).min(cap)
                }
            })
            .collect()
    }

    /// Normalised degree histogram `D_S(d)`: the fraction of nodes with degree
    /// `d` (entries rounded to the nearest non-negative integer).
    ///
    /// The histogram length is `max_degree + 1`; an empty sequence yields an
    /// empty histogram.
    #[must_use]
    pub fn distribution(&self) -> Vec<f64> {
        if self.degrees.is_empty() {
            return Vec::new();
        }
        let rounded: Vec<usize> = self
            .degrees
            .iter()
            .map(|&d| if d < 0.0 { 0 } else { d.round() as usize })
            .collect();
        let max_d = rounded.iter().copied().max().unwrap_or(0);
        let mut hist = vec![0.0; max_d + 1];
        for d in rounded {
            hist[d] += 1.0;
        }
        let n = self.degrees.len() as f64;
        for h in &mut hist {
            *h /= n;
        }
        hist
    }

    /// Empirical cumulative distribution function `F_S(d)` over integer degrees
    /// `0..=max`, i.e. the fraction of nodes with degree `<= d`.
    #[must_use]
    pub fn cdf(&self) -> Vec<f64> {
        let mut dist = self.distribution();
        let mut acc = 0.0;
        for p in &mut dist {
            acc += *p;
            *p = acc;
        }
        dist
    }

    /// Complementary CDF (the paper's Figure 2 y-axis): fraction of nodes with
    /// degree *strictly greater* than `d`, for `d` in `0..=max`.
    #[must_use]
    pub fn ccdf(&self) -> Vec<f64> {
        self.cdf().into_iter().map(|c| 1.0 - c).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AttributeSchema;
    use crate::graph::AttributedGraph;

    fn path_graph(n: usize) -> AttributedGraph {
        let mut g = AttributedGraph::new(n, AttributeSchema::new(0));
        for v in 1..n {
            g.add_edge((v - 1) as u32, v as u32).unwrap();
        }
        g
    }

    #[test]
    fn degree_sequence_from_graph() {
        let g = path_graph(4);
        let s = DegreeSequence::from_graph(&g);
        assert_eq!(s.values(), &[1.0, 2.0, 2.0, 1.0]);
        assert_eq!(s.sorted(), vec![1.0, 1.0, 2.0, 2.0]);
        assert_eq!(s.total(), 6.0);
        assert_eq!(s.implied_edges(), 3.0);
        assert_eq!(s.max(), 2.0);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_sequence_edge_cases() {
        let s = DegreeSequence::from_vec(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.distribution(), Vec::<f64>::new());
        assert_eq!(s.cdf(), Vec::<f64>::new());
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn distribution_sums_to_one() {
        let g = path_graph(7);
        let s = DegreeSequence::from_graph(&g);
        let dist = s.distribution();
        let sum: f64 = dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Path with 7 nodes: 2 endpoints of degree 1, 5 inner of degree 2.
        assert!((dist[1] - 2.0 / 7.0).abs() < 1e-12);
        assert!((dist[2] - 5.0 / 7.0).abs() < 1e-12);
        assert_eq!(dist[0], 0.0);
    }

    #[test]
    fn cdf_and_ccdf_are_consistent() {
        let s = DegreeSequence::from_vec(vec![1.0, 1.0, 2.0, 3.0]);
        let cdf = s.cdf();
        let ccdf = s.ccdf();
        assert_eq!(cdf.len(), 4);
        assert!((cdf[3] - 1.0).abs() < 1e-12);
        for (c, cc) in cdf.iter().zip(&ccdf) {
            assert!((c + cc - 1.0).abs() < 1e-12);
        }
        // CDF must be non-decreasing.
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn noisy_sequences_round_and_clamp() {
        let s = DegreeSequence::from_vec(vec![-0.7, 1.4, 2.6, 99.0]);
        assert_eq!(s.rounded_clamped(), vec![0, 1, 3, 3]);
        let dist = s.distribution();
        // Negative degrees clamp to 0 in the histogram.
        assert!(dist[0] > 0.0);
        let sum: f64 = dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
