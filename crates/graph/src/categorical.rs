//! Categorical-attribute binarisation (Section 7, "Non-Binary Attributes").
//!
//! The paper's framework works on binary attribute vectors, and notes that
//! categorical or bucketed continuous attributes can be supported "by simply
//! converting each attribute to a series of binary attributes, one per
//! category or range" (e.g. marital status → `isMarried`, `isDivorced`,
//! `isSingleOrWidowed`). [`CategoricalEncoder`] implements that conversion:
//! it owns a list of categorical attribute definitions, computes the total
//! binary width `w`, and maps per-node category selections to/from the compact
//! attribute codes used by [`crate::AttributedGraph`].

use serde::{Deserialize, Serialize};

use crate::attributes::AttributeSchema;
use crate::error::GraphError;
use crate::Result;

/// One categorical attribute: a name plus its category labels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoricalAttribute {
    /// Attribute name (e.g. `"marital_status"`).
    pub name: String,
    /// Category labels, in the order of their one-hot bit positions.
    pub categories: Vec<String>,
}

impl CategoricalAttribute {
    /// Creates a categorical attribute with at least one category.
    pub fn new(name: impl Into<String>, categories: &[&str]) -> Result<Self> {
        if categories.is_empty() {
            return Err(GraphError::InvalidParameter(
                "a categorical attribute needs at least one category".to_string(),
            ));
        }
        Ok(Self {
            name: name.into(),
            categories: categories.iter().map(|s| (*s).to_string()).collect(),
        })
    }
}

/// Encodes a set of categorical attributes as the one-hot binary attribute
/// vector the AGM framework operates on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoricalEncoder {
    attributes: Vec<CategoricalAttribute>,
    /// Bit offset of every attribute within the binary vector.
    offsets: Vec<usize>,
    width: usize,
}

impl CategoricalEncoder {
    /// Builds an encoder; the total one-hot width (sum of category counts)
    /// must not exceed the 16-bit limit of [`AttributeSchema`].
    pub fn new(attributes: Vec<CategoricalAttribute>) -> Result<Self> {
        let mut offsets = Vec::with_capacity(attributes.len());
        let mut width = 0usize;
        for a in &attributes {
            offsets.push(width);
            width += a.categories.len();
        }
        if width > 16 {
            return Err(GraphError::InvalidParameter(format!(
                "one-hot width {width} exceeds the supported maximum of 16 binary attributes"
            )));
        }
        Ok(Self {
            attributes,
            offsets,
            width,
        })
    }

    /// The binary attribute schema implied by the encoding.
    #[must_use]
    pub fn schema(&self) -> AttributeSchema {
        AttributeSchema::new(self.width)
    }

    /// Total number of binary attributes `w`.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The categorical attribute definitions.
    #[must_use]
    pub fn attributes(&self) -> &[CategoricalAttribute] {
        &self.attributes
    }

    /// Encodes one category selection per attribute (by category label) into a
    /// compact attribute code.
    pub fn encode_labels(&self, labels: &[&str]) -> Result<u32> {
        if labels.len() != self.attributes.len() {
            return Err(GraphError::InvalidParameter(format!(
                "expected {} category labels, got {}",
                self.attributes.len(),
                labels.len()
            )));
        }
        let mut code = 0u32;
        for ((attr, offset), &label) in self.attributes.iter().zip(&self.offsets).zip(labels) {
            let pos = attr
                .categories
                .iter()
                .position(|c| c == label)
                .ok_or_else(|| {
                    GraphError::InvalidParameter(format!(
                        "unknown category '{label}' for attribute '{}'",
                        attr.name
                    ))
                })?;
            code |= 1u32 << (offset + pos);
        }
        Ok(code)
    }

    /// Encodes one category selection per attribute (by category index).
    pub fn encode_indices(&self, indices: &[usize]) -> Result<u32> {
        if indices.len() != self.attributes.len() {
            return Err(GraphError::InvalidParameter(format!(
                "expected {} category indices, got {}",
                self.attributes.len(),
                indices.len()
            )));
        }
        let mut code = 0u32;
        for ((attr, offset), &idx) in self.attributes.iter().zip(&self.offsets).zip(indices) {
            if idx >= attr.categories.len() {
                return Err(GraphError::InvalidParameter(format!(
                    "category index {idx} out of range for attribute '{}'",
                    attr.name
                )));
            }
            code |= 1u32 << (offset + idx);
        }
        Ok(code)
    }

    /// Decodes a compact attribute code back into one category label per
    /// attribute. Codes that do not have exactly one bit set per attribute
    /// (which can arise from independently sampled synthetic attribute
    /// vectors) decode to the lowest set category, or the first category if
    /// none is set — mirroring how an analyst would read a one-hot vector.
    #[must_use]
    pub fn decode(&self, code: u32) -> Vec<&str> {
        self.attributes
            .iter()
            .zip(&self.offsets)
            .map(|(attr, &offset)| {
                let slice = (code >> offset) & ((1u32 << attr.categories.len()) - 1);
                let pos = slice.trailing_zeros() as usize;
                if slice == 0 || pos >= attr.categories.len() {
                    attr.categories[0].as_str()
                } else {
                    attr.categories[pos].as_str()
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marital_and_age() -> CategoricalEncoder {
        CategoricalEncoder::new(vec![
            CategoricalAttribute::new("marital", &["married", "divorced", "single_or_widowed"])
                .unwrap(),
            CategoricalAttribute::new("age", &["<=30", ">30"]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn width_is_sum_of_category_counts() {
        let enc = marital_and_age();
        assert_eq!(enc.width(), 5);
        assert_eq!(enc.schema().width(), 5);
        assert_eq!(enc.attributes().len(), 2);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let enc = marital_and_age();
        let code = enc.encode_labels(&["divorced", ">30"]).unwrap();
        assert_eq!(enc.decode(code), vec!["divorced", ">30"]);
        let code2 = enc.encode_indices(&[2, 0]).unwrap();
        assert_eq!(enc.decode(code2), vec!["single_or_widowed", "<=30"]);
        assert_ne!(code, code2);
        // Every valid code fits the schema.
        enc.schema().validate_code(code).unwrap();
        enc.schema().validate_code(code2).unwrap();
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let enc = marital_and_age();
        assert!(enc.encode_labels(&["married"]).is_err());
        assert!(enc.encode_labels(&["widowed", ">30"]).is_err());
        assert!(enc.encode_indices(&[0, 5]).is_err());
        assert!(CategoricalAttribute::new("empty", &[]).is_err());
        // Width cap.
        let too_wide = CategoricalEncoder::new(vec![
            CategoricalAttribute::new("a", &["1", "2", "3", "4", "5", "6", "7", "8", "9"]).unwrap(),
            CategoricalAttribute::new("b", &["1", "2", "3", "4", "5", "6", "7", "8", "9"]).unwrap(),
        ]);
        assert!(too_wide.is_err());
    }

    #[test]
    fn decode_tolerates_non_one_hot_codes() {
        let enc = marital_and_age();
        // All-zero code decodes to the first category of each attribute.
        assert_eq!(enc.decode(0), vec!["married", "<=30"]);
        // Multiple bits set: the lowest category wins.
        let messy = 0b11011u32;
        let decoded = enc.decode(messy);
        assert_eq!(decoded.len(), 2);
    }

    #[test]
    fn encoder_integrates_with_attributed_graph() {
        use crate::AttributedGraph;
        let enc = marital_and_age();
        let mut g = AttributedGraph::new(2, enc.schema());
        let code = enc.encode_labels(&["married", "<=30"]).unwrap();
        g.set_attribute_code(0, code).unwrap();
        assert_eq!(enc.decode(g.attribute_code(0)), vec!["married", "<=30"]);
    }
}
