//! Triangle and wedge counting.
//!
//! TriCycLe (Section 3.3) is parameterised by the exact number of triangles
//! `n_Δ` in the input graph, and the evaluation reports triangle counts and
//! the global clustering coefficient `C = 3 n_Δ / n_W` where `n_W` is the
//! number of wedges (length-two paths). The Ladder mechanism (Appendix C.3.2)
//! additionally needs, for an edge `(u, v)`, the number of triangles that edge
//! participates in — which equals the common-neighbor count of its endpoints.

use crate::graph::NodeId;
use crate::view::GraphView;

/// Counts the triangles in `g`.
///
/// Uses the forward (degree-oriented) algorithm: every edge is oriented from
/// its lower-`(degree, id)` endpoint to its higher one, which gives each
/// triangle exactly one vertex with out-edges to the other two. Intersections
/// are stamp-array lookups rather than sorted merges, and every out-degree is
/// `O(sqrt(m))`, so the whole count runs in `O(m^{3/2})` — far below the
/// `O(sum_v d_v^2)` of pairwise neighbor merges on skewed degree sequences.
#[must_use]
pub fn count_triangles<G: GraphView>(g: &G) -> u64 {
    let (offsets, out) = oriented_out_edges(g);
    let n = g.num_nodes();
    let mut stamp = vec![u32::MAX; n];
    let mut total = 0u64;
    for u in 0..n {
        let fwd = &out[offsets[u] as usize..offsets[u + 1] as usize];
        if fwd.len() < 2 {
            continue;
        }
        for &w in fwd {
            stamp[w as usize] = u as u32;
        }
        for &v in fwd {
            for &w in &out[offsets[v as usize] as usize..offsets[v as usize + 1] as usize] {
                total += u64::from(stamp[w as usize] == u as u32);
            }
        }
    }
    total
}

/// Builds the CSR out-adjacency of the degree orientation: edge `{u, v}` is
/// stored under `u` iff `(d_u, u) < (d_v, v)`. Out-lists inherit the sorted
/// order of the underlying neighbor lists.
fn oriented_out_edges<G: GraphView>(g: &G) -> (Vec<u32>, Vec<NodeId>) {
    let n = g.num_nodes();
    let deg: Vec<u32> = (0..n).map(|v| g.degree(v as NodeId) as u32).collect();
    let mut offsets = vec![0u32; n + 1];
    for u in 0..n {
        let ru = (deg[u], u as u32);
        let fwd = g
            .neighbors(u as NodeId)
            .iter()
            .filter(|&&v| ru < (deg[v as usize], v))
            .count();
        offsets[u + 1] = fwd as u32;
    }
    for u in 0..n {
        offsets[u + 1] += offsets[u];
    }
    let mut out = vec![0 as NodeId; offsets[n] as usize];
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    for u in 0..n {
        let ru = (deg[u], u as u32);
        for &v in g.neighbors(u as NodeId) {
            if ru < (deg[v as usize], v) {
                out[cursor[u] as usize] = v;
                cursor[u] += 1;
            }
        }
    }
    (offsets, out)
}

/// Counts the wedges (length-two paths) in `g`: `sum_v C(d_v, 2)`.
#[must_use]
pub fn count_wedges<G: GraphView>(g: &G) -> u64 {
    g.nodes()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// Number of triangles each node participates in.
///
/// `triangles_per_node(g)[v]` is the number of edges among the neighbors of
/// `v`; summing over all nodes counts each triangle three times.
#[must_use]
pub fn triangles_per_node<G: GraphView>(g: &G) -> Vec<u64> {
    let (offsets, out) = oriented_out_edges(g);
    let n = g.num_nodes();
    let mut stamp = vec![u32::MAX; n];
    let mut counts = vec![0u64; n];
    for u in 0..n {
        let fwd = &out[offsets[u] as usize..offsets[u + 1] as usize];
        if fwd.len() < 2 {
            continue;
        }
        for &w in fwd {
            stamp[w as usize] = u as u32;
        }
        for &v in fwd {
            for &w in &out[offsets[v as usize] as usize..offsets[v as usize + 1] as usize] {
                if stamp[w as usize] == u as u32 {
                    counts[u] += 1;
                    counts[v as usize] += 1;
                    counts[w as usize] += 1;
                }
            }
        }
    }
    counts
}

/// Number of triangles that the (present or hypothetical) edge `(u, v)` closes,
/// i.e. `|Γ(u) ∩ Γ(v)|`.
#[must_use]
pub fn triangles_on_edge<G: GraphView>(g: &G, u: NodeId, v: NodeId) -> usize {
    g.common_neighbor_count(u, v)
}

/// Maximum, over all present edges, of the number of triangles sharing that
/// edge. This is the quantity driving the local sensitivity of triangle
/// counting used by the Ladder framework.
#[must_use]
pub fn max_triangles_on_any_edge<G: GraphView>(g: &G) -> usize {
    g.edges()
        .map(|e| g.common_neighbor_count(e.u, e.v))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AttributeSchema;
    use crate::graph::AttributedGraph;

    fn complete_graph(n: usize) -> AttributedGraph {
        let mut g = AttributedGraph::new(n, AttributeSchema::new(0));
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u as u32, v as u32).unwrap();
            }
        }
        g
    }

    #[test]
    fn triangle_counts_on_known_graphs() {
        // K4 has C(4,3) = 4 triangles, K5 has 10.
        assert_eq!(count_triangles(&complete_graph(3)), 1);
        assert_eq!(count_triangles(&complete_graph(4)), 4);
        assert_eq!(count_triangles(&complete_graph(5)), 10);
        // A path has no triangles.
        let mut path = AttributedGraph::unattributed(5);
        for v in 1..5 {
            path.add_edge(v - 1, v).unwrap();
        }
        assert_eq!(count_triangles(&path), 0);
        // Empty graph.
        assert_eq!(count_triangles(&AttributedGraph::unattributed(0)), 0);
    }

    #[test]
    fn wedge_counts_on_known_graphs() {
        // K4: every node has degree 3, so 4 * C(3,2) = 12 wedges.
        assert_eq!(count_wedges(&complete_graph(4)), 12);
        // Star with 4 leaves: center has degree 4 → C(4,2) = 6 wedges.
        let mut star = AttributedGraph::unattributed(5);
        for v in 1..5 {
            star.add_edge(0, v).unwrap();
        }
        assert_eq!(count_wedges(&star), 6);
        assert_eq!(count_triangles(&star), 0);
    }

    #[test]
    fn global_clustering_identity_holds() {
        // For any graph: 3 * triangles <= wedges.
        let g = complete_graph(6);
        assert!(3 * count_triangles(&g) <= count_wedges(&g));
        // For a complete graph transitivity is exactly 1.
        assert_eq!(3 * count_triangles(&g), count_wedges(&g));
    }

    #[test]
    fn per_node_counts_sum_to_three_times_total() {
        let g = complete_graph(5);
        let per_node = triangles_per_node(&g);
        let total: u64 = per_node.iter().sum();
        assert_eq!(total, 3 * count_triangles(&g));
        // In K5 every node is in C(4,2) = 6 triangles.
        assert!(per_node.iter().all(|&c| c == 6));
    }

    #[test]
    fn triangles_on_edge_matches_common_neighbors() {
        let g = complete_graph(4);
        assert_eq!(triangles_on_edge(&g, 0, 1), 2);
        assert_eq!(max_triangles_on_any_edge(&g), 2);
        let empty = AttributedGraph::unattributed(3);
        assert_eq!(max_triangles_on_any_edge(&empty), 0);
    }

    #[test]
    fn bowtie_graph_counts() {
        // Two triangles sharing node 2.
        let mut g = AttributedGraph::unattributed(5);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(0, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        g.add_edge(3, 4).unwrap();
        g.add_edge(2, 4).unwrap();
        assert_eq!(count_triangles(&g), 2);
        let per_node = triangles_per_node(&g);
        assert_eq!(per_node[2], 2);
        assert_eq!(per_node[0], 1);
        assert_eq!(per_node[4], 1);
    }
}
