//! Plain-text interchange format for attributed graphs.
//!
//! The format is line oriented and mirrors how the paper's datasets are
//! distributed (an edge list plus a node-attribute table):
//!
//! ```text
//! # comments and blank lines are ignored
//! nodes <n> <w>
//! attr <node id> <bit_0> <bit_1> ... <bit_{w-1}>
//! edge <u> <v>
//! ```
//!
//! `attr` lines are optional (missing nodes default to the all-zero vector);
//! `edge` lines may contain duplicates or self-loops, which are skipped via
//! [`crate::GraphBuilder`] exactly as the paper's pre-processing does.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::attributes::AttributeSchema;
use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::AttributedGraph;
use crate::Result;

/// Serialises a graph to the text format described in the module docs.
#[must_use]
pub fn to_text(g: &AttributedGraph) -> String {
    let w = g.schema().width();
    let mut out = String::new();
    let _ = writeln!(out, "nodes {} {}", g.num_nodes(), w);
    if w > 0 {
        for v in g.nodes() {
            let bits = g.schema().bits_from_code(g.attribute_code(v));
            let _ = write!(out, "attr {v}");
            for b in bits {
                let _ = write!(out, " {b}");
            }
            out.push('\n');
        }
    }
    for e in g.edges() {
        let _ = writeln!(out, "edge {} {}", e.u, e.v);
    }
    out
}

/// Parses a graph from the text format described in the module docs.
pub fn from_text(text: &str) -> Result<AttributedGraph> {
    let mut builder: Option<GraphBuilder> = None;
    let mut schema = AttributeSchema::new(0);
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap_or_default();
        let ctx = |msg: &str| GraphError::Format(format!("line {}: {msg}", lineno + 1));
        match tag {
            "nodes" => {
                let n: usize = parts
                    .next()
                    .ok_or_else(|| ctx("missing node count"))?
                    .parse()
                    .map_err(|_| ctx("invalid node count"))?;
                let w: usize = parts
                    .next()
                    .ok_or_else(|| ctx("missing attribute width"))?
                    .parse()
                    .map_err(|_| ctx("invalid attribute width"))?;
                if w > 16 {
                    return Err(ctx("attribute width exceeds 16"));
                }
                schema = AttributeSchema::new(w);
                builder = Some(GraphBuilder::new(n, schema));
            }
            "attr" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| ctx("attr before nodes header"))?;
                let v: u32 = parts
                    .next()
                    .ok_or_else(|| ctx("missing node id"))?
                    .parse()
                    .map_err(|_| ctx("invalid node id"))?;
                let bits: Vec<u8> = parts
                    .map(|p| p.parse::<u8>().map_err(|_| ctx("invalid attribute bit")))
                    .collect::<Result<_>>()?;
                let code = schema.code_from_bits(&bits)?;
                b.attribute(v, code)?;
            }
            "edge" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| ctx("edge before nodes header"))?;
                let u: u32 = parts
                    .next()
                    .ok_or_else(|| ctx("missing edge endpoint"))?
                    .parse()
                    .map_err(|_| ctx("invalid edge endpoint"))?;
                let v: u32 = parts
                    .next()
                    .ok_or_else(|| ctx("missing edge endpoint"))?
                    .parse()
                    .map_err(|_| ctx("invalid edge endpoint"))?;
                b.edge(u, v)?;
            }
            other => {
                return Err(ctx(&format!("unknown record type '{other}'")));
            }
        }
    }
    builder
        .map(GraphBuilder::build)
        .ok_or_else(|| GraphError::Format("missing 'nodes' header".into()))
}

/// Writes a graph to a file in the text format.
pub fn write_file<P: AsRef<Path>>(g: &AttributedGraph, path: P) -> Result<()> {
    fs::write(path, to_text(g))?;
    Ok(())
}

/// Reads a graph from a file in the text format.
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<AttributedGraph> {
    let text = fs::read_to_string(path)?;
    from_text(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> AttributedGraph {
        let mut g = AttributedGraph::new(4, AttributeSchema::new(2));
        g.set_attribute_code(0, 1).unwrap();
        g.set_attribute_code(1, 3).unwrap();
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        g
    }

    #[test]
    fn text_roundtrip_preserves_graph() {
        let g = sample_graph();
        let text = to_text(&g);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed.num_nodes(), g.num_nodes());
        assert_eq!(parsed.num_edges(), g.num_edges());
        assert_eq!(parsed.attribute_codes(), g.attribute_codes());
        assert_eq!(parsed.edge_vec(), g.edge_vec());
    }

    #[test]
    fn parser_ignores_comments_blank_lines_and_noise_edges() {
        let text = "# a comment\n\nnodes 3 1\nattr 0 1\nedge 0 1\nedge 1 0\nedge 2 2\nedge 1 2\n";
        let g = from_text(text).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.attribute_code(0), 1);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(from_text("").is_err());
        assert!(from_text("edge 0 1\n").is_err());
        assert!(from_text("nodes x 2\n").is_err());
        assert!(from_text("nodes 3 1\nattr 0 2\n").is_err());
        assert!(from_text("nodes 3 1\nbogus 1 2\n").is_err());
        assert!(from_text("nodes 3 1\nedge 0\n").is_err());
        assert!(from_text("nodes 2 17\n").is_err());
        assert!(from_text("nodes 2 1\nedge 0 9\n").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = sample_graph();
        let dir = std::env::temp_dir().join("agmdp_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.graph");
        write_file(&g, &path).unwrap();
        let parsed = read_file(&path).unwrap();
        assert_eq!(parsed, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_missing_file_is_io_error() {
        let err = read_file("/definitely/not/a/real/path.graph").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }

    #[test]
    fn unattributed_graph_omits_attr_lines() {
        let g = AttributedGraph::unattributed(2);
        let text = to_text(&g);
        assert!(!text.contains("attr"));
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed.num_nodes(), 2);
    }
}
