//! Interchange formats for attributed graphs: line-oriented text and the
//! binary `.agb` container.
//!
//! ## Text format
//!
//! Line oriented, mirroring how the paper's datasets are distributed (an edge
//! list plus a node-attribute table):
//!
//! ```text
//! # comments and blank lines are ignored
//! nodes <n> <w>
//! attr <node id> <bit_0> <bit_1> ... <bit_{w-1}>
//! edge <u> <v>
//! ```
//!
//! `attr` lines are optional (missing nodes default to the all-zero vector);
//! `edge` lines may contain duplicates or self-loops, which are skipped via
//! [`crate::GraphBuilder`] exactly as the paper's pre-processing does.
//!
//! ## Binary format (`.agb`)
//!
//! A versioned little-endian container whose payload is exactly the CSR
//! arrays of a [`FrozenGraph`], so reading it requires no parsing, sorting
//! or re-indexing — the bytes *are* the analysis-phase representation:
//!
//! ```text
//! offset  size      field
//! 0       4         magic  b"AGB1"
//! 4       4         format version (u32, currently 1)
//! 8       8         n  — node count (u64)
//! 16      8         m  — undirected edge count (u64)
//! 24      4         w  — attribute width (u32)
//! 28      4(n+1)    CSR offsets (u32 each)
//! …       4·2m      CSR neighbors (u32 each)
//! …       4n        attribute codes (u32 each; present only when w > 0)
//! end-8   8         FNV-1a 64 checksum of every preceding byte
//! ```
//!
//! All malformations are reported as typed [`GraphError`]s
//! ([`GraphError::BadMagic`], [`GraphError::UnsupportedVersion`],
//! [`GraphError::TruncatedBinary`], [`GraphError::ChecksumMismatch`]) and a
//! checksum-valid file still passes full CSR validation
//! ([`FrozenGraph::from_csr`]) before a graph is returned.
//!
//! [`load_file`] / [`load_frozen_file`] auto-detect the format from the
//! file's leading bytes, so every path-based loader (CLI `--input`, the
//! service's `POST /datasets` path registration) accepts both formats
//! transparently. The round-trip text → binary → text reproduces any
//! canonically written text file (the output of [`to_text`]) byte for
//! byte; hand-authored files that rely on the parser's leniencies
//! (comments, blank lines, duplicate/self-loop edges, arbitrary line
//! order) round-trip to the same *graph* in canonical form.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::attributes::AttributeSchema;
use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::frozen::FrozenGraph;
use crate::graph::AttributedGraph;
use crate::view::GraphView;
use crate::Result;

/// Serialises a graph to the text format described in the module docs.
///
/// Accepts any [`GraphView`]; the output depends only on the graph's
/// logical content, so a frozen snapshot serialises byte-identically to
/// the graph it was frozen from.
#[must_use]
pub fn to_text<G: GraphView>(g: &G) -> String {
    let w = g.schema().width();
    let mut out = String::new();
    let _ = writeln!(out, "nodes {} {}", g.num_nodes(), w);
    if w > 0 {
        for v in g.nodes() {
            let bits = g.schema().bits_from_code(g.attribute_code(v));
            let _ = write!(out, "attr {v}");
            for b in bits {
                let _ = write!(out, " {b}");
            }
            out.push('\n');
        }
    }
    for e in g.edges() {
        let _ = writeln!(out, "edge {} {}", e.u, e.v);
    }
    out
}

/// Parses a graph from the text format described in the module docs.
pub fn from_text(text: &str) -> Result<AttributedGraph> {
    let mut builder: Option<GraphBuilder> = None;
    let mut schema = AttributeSchema::new(0);
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap_or_default();
        let ctx = |msg: &str| GraphError::Format(format!("line {}: {msg}", lineno + 1));
        match tag {
            "nodes" => {
                let n: usize = parts
                    .next()
                    .ok_or_else(|| ctx("missing node count"))?
                    .parse()
                    .map_err(|_| ctx("invalid node count"))?;
                let w: usize = parts
                    .next()
                    .ok_or_else(|| ctx("missing attribute width"))?
                    .parse()
                    .map_err(|_| ctx("invalid attribute width"))?;
                if w > 16 {
                    return Err(ctx("attribute width exceeds 16"));
                }
                schema = AttributeSchema::new(w);
                builder = Some(GraphBuilder::new(n, schema));
            }
            "attr" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| ctx("attr before nodes header"))?;
                let v: u32 = parts
                    .next()
                    .ok_or_else(|| ctx("missing node id"))?
                    .parse()
                    .map_err(|_| ctx("invalid node id"))?;
                let bits: Vec<u8> = parts
                    .map(|p| p.parse::<u8>().map_err(|_| ctx("invalid attribute bit")))
                    .collect::<Result<_>>()?;
                let code = schema.code_from_bits(&bits)?;
                b.attribute(v, code)?;
            }
            "edge" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| ctx("edge before nodes header"))?;
                let u: u32 = parts
                    .next()
                    .ok_or_else(|| ctx("missing edge endpoint"))?
                    .parse()
                    .map_err(|_| ctx("invalid edge endpoint"))?;
                let v: u32 = parts
                    .next()
                    .ok_or_else(|| ctx("missing edge endpoint"))?
                    .parse()
                    .map_err(|_| ctx("invalid edge endpoint"))?;
                b.edge(u, v)?;
            }
            other => {
                return Err(ctx(&format!("unknown record type '{other}'")));
            }
        }
    }
    builder
        .map(GraphBuilder::build)
        .ok_or_else(|| GraphError::Format("missing 'nodes' header".into()))
}

/// Writes a graph to a file in the text format.
pub fn write_file<G: GraphView, P: AsRef<Path>>(g: &G, path: P) -> Result<()> {
    fs::write(path, to_text(g))?;
    Ok(())
}

/// Reads a graph from a file in the text format.
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<AttributedGraph> {
    let text = fs::read_to_string(path)?;
    from_text(&text)
}

/// Magic bytes opening every binary graph file.
pub const BINARY_MAGIC: [u8; 4] = *b"AGB1";
/// The binary format version this build writes (and the newest it reads).
pub const BINARY_VERSION: u32 = 1;
/// Conventional file extension for the binary format.
pub const BINARY_EXTENSION: &str = "agb";

pub(crate) const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 4;
pub(crate) const CHECKSUM_LEN: usize = 8;

/// FNV-1a 64-bit hash — the binary format's integrity checksum. Not
/// cryptographic; it guards against bit rot and interrupted writes.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The section geometry a validated `.agb` header implies — shared between
/// the owned deserialiser ([`from_binary`]) and the zero-copy view
/// ([`crate::mmap::FrozenView`]), so both paths accept and reject exactly
/// the same files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BinaryLayout {
    /// Node count `n`.
    pub n: usize,
    /// Undirected edge count `m`.
    pub m: usize,
    /// Attribute width `w` (0 ⇒ no attribute section).
    pub width: usize,
    /// Exact total byte length of a well-formed file with this header.
    pub total_len: usize,
}

impl BinaryLayout {
    /// Words in the CSR offsets section (`n + 1`).
    pub fn offset_words(self) -> usize {
        self.n + 1
    }

    /// Words in the CSR neighbors section (`2m`).
    pub fn neighbor_words(self) -> usize {
        2 * self.m
    }

    /// Words in the attribute section (`n`, or 0 when `width == 0`).
    pub fn attr_words(self) -> usize {
        if self.width > 0 {
            self.n
        } else {
            0
        }
    }
}

/// Validates the fixed-size header plus overall length of a binary graph
/// buffer: magic, version, dimension limits, truncation and trailing bytes.
/// On success the buffer is exactly `total_len` bytes and every section
/// boundary implied by the returned layout is in range. Does **not** verify
/// the checksum — callers decide whether to pay that full-payload scan
/// ([`verify_checksum`]).
pub(crate) fn parse_layout(bytes: &[u8]) -> Result<BinaryLayout> {
    if bytes.len() < BINARY_MAGIC.len() || !is_binary(bytes) {
        return Err(GraphError::BadMagic);
    }
    let mut r = ByteReader::new(bytes);
    let _magic = r.take(4)?;
    let version = r.u32()?;
    if version != BINARY_VERSION {
        return Err(GraphError::UnsupportedVersion {
            found: version,
            supported: BINARY_VERSION,
        });
    }
    let n = usize::try_from(r.u64()?).map_err(|_| {
        GraphError::Format("binary graph node count exceeds this platform's usize".into())
    })?;
    let m = usize::try_from(r.u64()?).map_err(|_| {
        GraphError::Format("binary graph edge count exceeds this platform's usize".into())
    })?;
    let width = r.u32()? as usize;
    if width > 16 {
        return Err(GraphError::Format(format!(
            "binary graph attribute width {width} exceeds 16"
        )));
    }
    if n > u32::MAX as usize || m.checked_mul(2).is_none_or(|h| h > u32::MAX as usize) {
        return Err(GraphError::Format(format!(
            "binary graph dimensions n={n}, m={m} exceed the 32-bit CSR limits"
        )));
    }
    let layout = BinaryLayout {
        n,
        m,
        width,
        total_len: HEADER_LEN
            + 4 * (n + 1)
            + 4 * 2 * m
            + 4 * if width > 0 { n } else { 0 }
            + CHECKSUM_LEN,
    };
    if bytes.len() < layout.total_len {
        return Err(GraphError::TruncatedBinary {
            expected: layout.total_len,
            actual: bytes.len(),
        });
    }
    if bytes.len() > layout.total_len {
        return Err(GraphError::Format(format!(
            "binary graph has {} trailing bytes after the checksum",
            bytes.len() - layout.total_len
        )));
    }
    Ok(layout)
}

/// Verifies the trailing FNV-1a 64 checksum of a layout-validated buffer
/// (`bytes.len() == layout.total_len` must already hold).
pub(crate) fn verify_checksum(bytes: &[u8]) -> Result<()> {
    let Some(body_len) = bytes.len().checked_sub(CHECKSUM_LEN) else {
        return Err(GraphError::TruncatedBinary {
            expected: CHECKSUM_LEN,
            actual: bytes.len(),
        });
    };
    let (body, tail) = bytes.split_at(body_len);
    let stored = u64::from_le_bytes(tail.try_into().map_err(|_| GraphError::TruncatedBinary {
        expected: CHECKSUM_LEN,
        actual: tail.len(),
    })?);
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(GraphError::ChecksumMismatch { stored, computed });
    }
    Ok(())
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A cursor over the byte buffer that reports truncation with the total
/// length the header implies, not just "unexpected EOF".
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(len)
            .ok_or(GraphError::TruncatedBinary {
                expected: usize::MAX,
                actual: self.bytes.len(),
            })?;
        if end > self.bytes.len() {
            return Err(GraphError::TruncatedBinary {
                expected: end,
                actual: self.bytes.len(),
            });
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn u32_vec(&mut self, count: usize) -> Result<Vec<u32>> {
        let bytes = self.take(count.checked_mul(4).ok_or(GraphError::TruncatedBinary {
            expected: usize::MAX,
            actual: self.bytes.len(),
        })?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }
}

/// Serialises a graph to the binary `.agb` format described in the module
/// docs. Accepts any [`GraphView`]; the payload written is the graph's CSR
/// image (offsets derived from degrees, neighbors in node order), identical
/// for both representations of the same graph.
/// # Panics
///
/// Panics if the graph has more than `u32::MAX / 2` edges (the CSR offsets
/// are 32-bit; same bound as [`FrozenGraph::from_graph`]).
#[must_use]
pub fn to_binary<G: GraphView>(g: &G) -> Vec<u8> {
    let n = g.num_nodes();
    let m = g.num_edges();
    assert!(
        u32::try_from(2 * m).is_ok(),
        "graph too large for binary serialisation: {} half-edges exceed u32 offsets",
        2 * m
    );
    let w = g.schema().width();
    let attr_words = if w > 0 { n } else { 0 };
    let mut out =
        Vec::with_capacity(HEADER_LEN + 4 * (n + 1) + 4 * 2 * m + 4 * attr_words + CHECKSUM_LEN);
    out.extend_from_slice(&BINARY_MAGIC);
    push_u32(&mut out, BINARY_VERSION);
    push_u64(&mut out, n as u64);
    push_u64(&mut out, m as u64);
    push_u32(&mut out, w as u32);
    let mut offset = 0u32;
    push_u32(&mut out, 0);
    for v in g.nodes() {
        offset += g.degree(v) as u32;
        push_u32(&mut out, offset);
    }
    for v in g.nodes() {
        for &u in g.neighbors(v) {
            push_u32(&mut out, u);
        }
    }
    if w > 0 {
        for v in g.nodes() {
            push_u32(&mut out, g.attribute_code(v));
        }
    }
    let checksum = fnv1a64(&out);
    push_u64(&mut out, checksum);
    out
}

/// Returns `true` when `bytes` start with the binary graph magic — the
/// format auto-detection used by [`load_file`] / [`load_frozen_file`].
#[must_use]
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= BINARY_MAGIC.len() && bytes[..BINARY_MAGIC.len()] == BINARY_MAGIC
}

/// Parses a binary `.agb` graph into a validated [`FrozenGraph`].
///
/// Every malformation maps to a typed [`GraphError`]: wrong magic, a newer
/// format version, a payload shorter than the header implies, a checksum
/// mismatch, and any structural CSR inconsistency a checksum-valid file
/// might still encode.
pub fn from_binary(bytes: &[u8]) -> Result<FrozenGraph> {
    let layout = parse_layout(bytes)?;
    // Verify integrity before interpreting the payload.
    verify_checksum(bytes)?;
    let mut r = ByteReader::new(bytes);
    let _header = r.take(HEADER_LEN)?;
    let offsets = r.u32_vec(layout.offset_words())?;
    let neighbors = r.u32_vec(layout.neighbor_words())?;
    let attributes = if layout.width > 0 {
        r.u32_vec(layout.attr_words())?
    } else {
        vec![0; layout.n]
    };
    // `from_csr` rejects offsets whose final entry disagrees with the
    // neighbor array, and exactly 2m neighbor words were read, so the
    // resulting edge count necessarily equals the header's m.
    FrozenGraph::from_csr(
        AttributeSchema::new(layout.width),
        offsets,
        neighbors,
        attributes,
    )
}

/// Writes a graph to a file in the binary `.agb` format.
pub fn write_binary_file<G: GraphView, P: AsRef<Path>>(g: &G, path: P) -> Result<()> {
    fs::write(path, to_binary(g))?;
    Ok(())
}

/// Reads a binary `.agb` graph file into a [`FrozenGraph`].
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> Result<FrozenGraph> {
    let bytes = fs::read(path)?;
    from_binary(&bytes)
}

/// Loads a graph file in either format (auto-detected from the leading
/// bytes) as a frozen snapshot: binary files deserialise directly, text
/// files are parsed and frozen.
pub fn load_frozen_file<P: AsRef<Path>>(path: P) -> Result<FrozenGraph> {
    let bytes = fs::read(path)?;
    if is_binary(&bytes) {
        from_binary(&bytes)
    } else {
        let text = String::from_utf8(bytes).map_err(|_| {
            GraphError::Format("graph file is neither binary nor UTF-8 text".into())
        })?;
        Ok(from_text(&text)?.freeze())
    }
}

/// Loads a graph file in either format (auto-detected from the leading
/// bytes) as a mutable [`AttributedGraph`]: text files are parsed, binary
/// files are deserialised and thawed.
pub fn load_file<P: AsRef<Path>>(path: P) -> Result<AttributedGraph> {
    let bytes = fs::read(path)?;
    if is_binary(&bytes) {
        Ok(from_binary(&bytes)?.thaw())
    } else {
        let text = String::from_utf8(bytes).map_err(|_| {
            GraphError::Format("graph file is neither binary nor UTF-8 text".into())
        })?;
        from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> AttributedGraph {
        let mut g = AttributedGraph::new(4, AttributeSchema::new(2));
        g.set_attribute_code(0, 1).unwrap();
        g.set_attribute_code(1, 3).unwrap();
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        g
    }

    #[test]
    fn text_roundtrip_preserves_graph() {
        let g = sample_graph();
        let text = to_text(&g);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed.num_nodes(), g.num_nodes());
        assert_eq!(parsed.num_edges(), g.num_edges());
        assert_eq!(parsed.attribute_codes(), g.attribute_codes());
        assert_eq!(parsed.edge_vec(), g.edge_vec());
    }

    #[test]
    fn parser_ignores_comments_blank_lines_and_noise_edges() {
        let text = "# a comment\n\nnodes 3 1\nattr 0 1\nedge 0 1\nedge 1 0\nedge 2 2\nedge 1 2\n";
        let g = from_text(text).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.attribute_code(0), 1);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(from_text("").is_err());
        assert!(from_text("edge 0 1\n").is_err());
        assert!(from_text("nodes x 2\n").is_err());
        assert!(from_text("nodes 3 1\nattr 0 2\n").is_err());
        assert!(from_text("nodes 3 1\nbogus 1 2\n").is_err());
        assert!(from_text("nodes 3 1\nedge 0\n").is_err());
        assert!(from_text("nodes 2 17\n").is_err());
        assert!(from_text("nodes 2 1\nedge 0 9\n").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = sample_graph();
        let dir = std::env::temp_dir().join("agmdp_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.graph");
        write_file(&g, &path).unwrap();
        let parsed = read_file(&path).unwrap();
        assert_eq!(parsed, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_missing_file_is_io_error() {
        let err = read_file("/definitely/not/a/real/path.graph").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }

    #[test]
    fn binary_roundtrip_preserves_graph() {
        let g = sample_graph();
        let frozen = g.freeze();
        let bytes = to_binary(&g);
        assert!(is_binary(&bytes));
        let parsed = from_binary(&bytes).unwrap();
        assert_eq!(parsed, frozen);
        // Serialising the frozen snapshot is byte-identical to serialising
        // the mutable original.
        assert_eq!(to_binary(&frozen), bytes);
        // Text render of both representations agrees too.
        assert_eq!(to_text(&frozen), to_text(&g));
    }

    #[test]
    fn binary_roundtrip_of_unattributed_and_empty_graphs() {
        for g in [
            AttributedGraph::unattributed(0),
            AttributedGraph::unattributed(5),
            sample_graph(),
        ] {
            let parsed = from_binary(&to_binary(&g)).unwrap();
            assert_eq!(parsed.thaw(), g);
        }
    }

    #[test]
    fn binary_file_roundtrip_and_autodetection() {
        let g = sample_graph();
        let dir = std::env::temp_dir().join(format!("agmdp_graph_bin_io_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bin_path = dir.join("roundtrip.agb");
        let txt_path = dir.join("roundtrip.graph");
        write_binary_file(&g, &bin_path).unwrap();
        write_file(&g, &txt_path).unwrap();
        assert_eq!(read_binary_file(&bin_path).unwrap(), g.freeze());
        // Auto-detection loads both formats through one entry point.
        assert_eq!(load_file(&bin_path).unwrap(), g);
        assert_eq!(load_file(&txt_path).unwrap(), g);
        assert_eq!(load_frozen_file(&bin_path).unwrap(), g.freeze());
        assert_eq!(load_frozen_file(&txt_path).unwrap(), g.freeze());
        std::fs::remove_file(&bin_path).ok();
        std::fs::remove_file(&txt_path).ok();
    }

    #[test]
    fn unattributed_graph_omits_attr_lines() {
        let g = AttributedGraph::unattributed(2);
        let text = to_text(&g);
        assert!(!text.contains("attr"));
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed.num_nodes(), 2);
    }
}
