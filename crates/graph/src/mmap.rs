//! Zero-copy loading of binary `.agb` graphs.
//!
//! The `.agb` payload (see [`crate::io`]) *is* the CSR arrays of a
//! [`FrozenGraph`] in little-endian byte order. Deserialising it
//! ([`crate::io::from_binary`]) copies every word into owned vectors —
//! ~100 ms and a full resident copy for a million-node graph, per process.
//! This module instead memory-maps the file and views the CSR sections in
//! place:
//!
//! * [`Mapping`] is the unsafe island (mirroring `agmdp-service`'s `sys`
//!   module): raw `mmap`/`munmap` bindings on unix — the container has no
//!   libc crate — and a read-to-aligned-heap fallback elsewhere. Every
//!   `unsafe` block carries a SAFETY comment; nothing else in the crate may
//!   use `unsafe` (`#![deny(unsafe_code)]` with a scoped allow here).
//! * [`FrozenView`] is a borrowed CSR graph — `&[u32]` slices pointing
//!   straight into the mapped bytes — implementing [`GraphView`] so every
//!   analysis function accepts it interchangeably with the owned
//!   representations.
//! * [`MappedGraph`] owns a mapping plus the header scalars and hands out
//!   fresh [`FrozenView`]s; it is the `Send + Sync` value a dataset registry
//!   can hold.
//!
//! Loading is O(header + offsets scan) instead of O(file): registering a
//! million-node dataset costs microseconds-to-milliseconds, and N processes
//! mapping the same file share one page-cache copy of the CSR arrays.
//!
//! ## Validation tiers
//!
//! [`MappedGraph::open`] performs the *full* validation stack — layout,
//! alignment, checksum, and every structural CSR invariant — and therefore
//! accepts and rejects exactly the same files as the owned deserialiser
//! (shared helpers in [`crate::io`] / [`crate::frozen`] enforce this).
//! [`MappedGraph::open_trusted`] validates the layout and runs an O(n)
//! offsets sanity scan but skips the checksum and the per-list/symmetry
//! checks; it is for artifacts the caller itself wrote moments or restarts
//! ago (e.g. a service's release store). A violated trust contract can
//! produce wrong analysis results or a panic, but never memory unsafety:
//! every access goes through bounds-checked slices.
//!
//! ## Byte order and alignment
//!
//! The in-place view reinterprets `&[u8]` as `&[u32]`, which is only the
//! file's semantics on little-endian hosts; big-endian builds transparently
//! fall back to owned deserialisation. The header is 28 bytes, so all three
//! word sections are 4-byte aligned whenever the buffer base is — true for
//! any page-aligned mapping and for the 8-byte-aligned heap fallback.
//! Misaligned borrowed buffers are rejected with
//! [`GraphError::MisalignedBinary`].
//!
//! A mapped file must not be truncated or rewritten in place while mapped
//! (the OS would deliver `SIGBUS`); writers must publish `.agb` artifacts
//! atomically (write to a temporary file, then rename), which is how the
//! service's release store behaves.

use std::path::Path;

use crate::attributes::AttributeSchema;
use crate::error::GraphError;
use crate::frozen::{validate_attribute_codes, validate_csr_structure, FrozenGraph};
use crate::graph::NodeId;
use crate::io;
use crate::view::GraphView;
use crate::Result;

/// A read-only byte buffer backed by `mmap` (unix) or an aligned heap copy
/// (elsewhere). The buffer base is always at least 8-byte aligned.
#[cfg(all(unix, target_endian = "little"))]
pub struct Mapping {
    ptr: *const u8,
    len: usize,
}

#[cfg(all(unix, target_endian = "little"))]
mod unix_mmap {
    //! Raw `mmap`/`munmap` bindings against the platform libc (the container
    //! has no `libc` crate), in the same style as `agmdp-service`'s `sys`
    //! module: the smallest possible surface, every unsafe block annotated.
    use core::ffi::c_void;
    use std::fs::File;
    use std::os::fd::AsRawFd;
    use std::path::Path;

    use super::Mapping;
    use crate::error::GraphError;
    use crate::Result;

    const PROT_READ: i32 = 0x1;
    const MAP_PRIVATE: i32 = 0x2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    fn map_failed() -> *mut c_void {
        // MAP_FAILED is ((void *) -1).
        usize::MAX as *mut c_void
    }

    impl Mapping {
        /// Maps `path` read-only in its entirety.
        ///
        /// Empty files are rejected up front (`mmap` of length 0 is
        /// `EINVAL`, and no valid `.agb` is shorter than its header) with
        /// the same [`GraphError::BadMagic`] the byte parser reports.
        pub(crate) fn open(path: &Path) -> Result<Self> {
            let file = File::open(path)?;
            let len = usize::try_from(file.metadata()?.len()).map_err(|_| {
                GraphError::Format("graph file exceeds this platform's address space".into())
            })?;
            if len == 0 {
                return Err(GraphError::BadMagic);
            }
            // SAFETY: plain FFI call. A PROT_READ + MAP_PRIVATE mapping of a
            // file we own a handle to has no preconditions beyond a valid
            // fd, which `file` guarantees; the result is checked below.
            let ptr = unsafe {
                mmap(
                    core::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == map_failed() || ptr.is_null() {
                return Err(GraphError::Io(format!(
                    "mmap of {} failed: {}",
                    path.display(),
                    std::io::Error::last_os_error()
                )));
            }
            // Closing `file` on return is fine: POSIX keeps the mapping
            // alive independently of the descriptor.
            Ok(Self {
                ptr: ptr.cast::<u8>().cast_const(),
                len,
            })
        }

        /// The mapped bytes.
        pub(crate) fn bytes(&self) -> &[u8] {
            // SAFETY: `ptr` is the non-null base of a live PROT_READ mapping
            // of exactly `len` bytes (established in `open`, released only
            // in `drop`), and u8 has no alignment or validity requirements.
            unsafe { core::slice::from_raw_parts(self.ptr, self.len) }
        }

        /// Length of the mapping in bytes.
        pub(crate) fn len(&self) -> usize {
            self.len
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe exactly the region `mmap`
            // returned in `open`, unmapped exactly once (Drop). Failure is
            // ignored: there is no recovery from a bad munmap and the
            // process will release the region at exit anyway.
            unsafe {
                munmap(self.ptr.cast_mut().cast(), self.len);
            }
        }
    }

    // SAFETY: the mapping is immutable (PROT_READ) for its whole lifetime,
    // so shared references from any thread observe frozen bytes; the raw
    // pointer is owned uniquely by this struct.
    unsafe impl Send for Mapping {}
    // SAFETY: as above — concurrent reads of an immutable mapping are safe.
    unsafe impl Sync for Mapping {}
}

/// A read-only byte buffer backed by `mmap` (unix) or an aligned heap copy
/// (elsewhere). The buffer base is always at least 8-byte aligned.
#[cfg(all(not(unix), target_endian = "little"))]
pub struct Mapping {
    /// `u64` storage guarantees 8-byte alignment for the `&[u32]` views.
    words: Vec<u64>,
    len: usize,
}

#[cfg(all(not(unix), target_endian = "little"))]
mod heap_fallback {
    use std::path::Path;

    use super::Mapping;
    use crate::error::GraphError;
    use crate::Result;

    impl Mapping {
        /// Reads `path` into 8-byte-aligned heap storage — the portable
        /// stand-in for a real memory mapping.
        pub(crate) fn open(path: &Path) -> Result<Self> {
            let bytes = std::fs::read(path)?;
            if bytes.is_empty() {
                return Err(GraphError::BadMagic);
            }
            let len = bytes.len();
            let mut words = vec![0u64; len.div_ceil(8)];
            for (word, chunk) in words.iter_mut().zip(bytes.chunks(8)) {
                let mut buf = [0u8; 8];
                for (dst, src) in buf.iter_mut().zip(chunk) {
                    *dst = *src;
                }
                // On the little-endian targets this module compiles for,
                // `from_le_bytes` + viewing the words as bytes reproduces
                // the file bytes exactly.
                *word = u64::from_le_bytes(buf);
            }
            Ok(Self { words, len })
        }

        /// The buffered bytes.
        pub(crate) fn bytes(&self) -> &[u8] {
            // SAFETY: the allocation holds `words.len() * 8 >= len` bytes,
            // the base pointer is valid and 8-byte aligned for the whole
            // borrow, and u8 has no validity requirements.
            unsafe { core::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
        }

        /// Length of the buffer in bytes.
        pub(crate) fn len(&self) -> usize {
            self.len
        }
    }
}

#[cfg(target_endian = "little")]
impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping").field("len", &self.len()).finish()
    }
}

/// Reinterprets little-endian file bytes as a `u32` word slice in place.
///
/// Rejects misaligned bases ([`GraphError::MisalignedBinary`]) and byte
/// lengths that are not a whole number of words.
#[cfg(target_endian = "little")]
fn le_words(bytes: &[u8]) -> Result<&[u32]> {
    let offset = bytes.as_ptr() as usize % 4;
    if offset != 0 {
        return Err(GraphError::MisalignedBinary { offset });
    }
    if bytes.len() % 4 != 0 {
        return Err(GraphError::Format(format!(
            "binary graph payload of {} bytes is not a whole number of 32-bit words",
            bytes.len()
        )));
    }
    // SAFETY: the base is 4-byte aligned and the length a multiple of 4
    // (checked above), the source slice outlives the return value (same
    // lifetime), and every bit pattern is a valid u32. On the little-endian
    // targets this function compiles for, the words read back exactly the
    // values `to_binary` wrote.
    #[allow(unsafe_code)]
    Ok(unsafe { core::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), bytes.len() / 4) })
}

/// Carves the validated byte image into its three CSR word sections
/// `(offsets, neighbors, attributes)`. `layout` must describe `bytes`
/// exactly (as produced by [`io::parse_layout`]).
#[cfg(target_endian = "little")]
fn sections(bytes: &[u8], layout: io::BinaryLayout) -> Result<(&[u32], &[u32], &[u32])> {
    let body_end = layout.total_len.saturating_sub(io::CHECKSUM_LEN);
    let body = bytes
        .get(io::HEADER_LEN..body_end)
        .ok_or(GraphError::TruncatedBinary {
            expected: layout.total_len,
            actual: bytes.len(),
        })?;
    let words = le_words(body)?;
    let truncated =
        |expected: usize, actual: usize| GraphError::TruncatedBinary { expected, actual };
    let (offsets, rest) = words
        .split_at_checked(layout.offset_words())
        .ok_or_else(|| truncated(layout.offset_words(), words.len()))?;
    let (neighbors, rest) = rest
        .split_at_checked(layout.neighbor_words())
        .ok_or_else(|| truncated(layout.neighbor_words(), rest.len()))?;
    let (attributes, rest) = rest
        .split_at_checked(layout.attr_words())
        .ok_or_else(|| truncated(layout.attr_words(), rest.len()))?;
    if !rest.is_empty() {
        return Err(GraphError::Format(format!(
            "binary graph payload has {} unexpected trailing words",
            rest.len()
        )));
    }
    Ok((offsets, neighbors, attributes))
}

/// A borrowed CSR graph: slices into an `.agb` byte image (or into an owned
/// [`FrozenGraph`]), implementing [`GraphView`] without owning any array.
///
/// `Copy` — a view is three fat pointers and two scalars. Accessors return
/// slices tied to the *underlying* buffer's lifetime `'a`, not to the view
/// value itself, so views can be rebuilt per call by [`MappedGraph`].
#[derive(Debug, Clone, Copy)]
pub struct FrozenView<'a> {
    schema: AttributeSchema,
    /// `n + 1` entries; `offsets[v]..offsets[v+1]` spans node `v`'s list.
    offsets: &'a [u32],
    /// `2m` concatenated sorted neighbor lists.
    neighbors: &'a [NodeId],
    /// `n` attribute codes, or empty when the width is 0.
    attributes: &'a [u32],
    num_edges: usize,
}

impl<'a> FrozenView<'a> {
    /// Builds a fully validated view over an `.agb` byte image — the
    /// zero-copy equivalent of [`io::from_binary`], accepting and rejecting
    /// exactly the same buffers (shared layout, checksum and CSR
    /// validators).
    ///
    /// `bytes` must be 4-byte aligned (any memory mapping or 4-aligned heap
    /// buffer is); misaligned bases are rejected with
    /// [`GraphError::MisalignedBinary`].
    #[cfg(target_endian = "little")]
    pub fn parse(bytes: &'a [u8]) -> Result<Self> {
        let layout = io::parse_layout(bytes)?;
        // Verify integrity before interpreting the payload, mirroring
        // `from_binary`.
        io::verify_checksum(bytes)?;
        let (offsets, neighbors, attributes) = sections(bytes, layout)?;
        validate_csr_structure(offsets, neighbors)?;
        let schema = AttributeSchema::new(layout.width);
        if layout.width > 0 {
            validate_attribute_codes(schema, attributes, layout.n)?;
        }
        Ok(Self {
            schema,
            offsets,
            neighbors,
            attributes,
            num_edges: layout.m,
        })
    }

    /// Builds a view over an `.agb` byte image written by a trusted
    /// producer, skipping the checksum and the per-list/symmetry validation.
    ///
    /// What *is* still checked — the header layout, alignment, and an O(n)
    /// offsets sanity scan (starts at 0, ends at `2m`, non-decreasing) —
    /// guarantees every subsequent slice access is in bounds. A producer
    /// that violates the trust contract (hands over structurally invalid
    /// CSR content) gets wrong analysis results or a panic from a consumer,
    /// never memory unsafety.
    #[cfg(target_endian = "little")]
    pub fn parse_trusted(bytes: &'a [u8]) -> Result<Self> {
        let layout = io::parse_layout(bytes)?;
        let (offsets, neighbors, attributes) = sections(bytes, layout)?;
        let invalid = |msg: String| GraphError::Format(format!("invalid CSR graph: {msg}"));
        if offsets.first().copied() != Some(0) {
            return Err(invalid("offsets must start at 0".into()));
        }
        if offsets.last().map(|&o| o as usize) != Some(neighbors.len()) {
            return Err(invalid(format!(
                "final offset does not match {} neighbor entries",
                neighbors.len()
            )));
        }
        if offsets
            .iter()
            .zip(offsets.iter().skip(1))
            .any(|(a, b)| b < a)
        {
            return Err(invalid("offsets must be non-decreasing".into()));
        }
        Ok(Self {
            schema: AttributeSchema::new(layout.width),
            offsets,
            neighbors,
            attributes,
            num_edges: layout.m,
        })
    }

    /// Builds a fully validated view from caller-provided CSR slices
    /// (requirements as in [`FrozenGraph::from_csr`]; `attributes` needs
    /// `n` codes valid under `schema`).
    pub fn new(
        schema: AttributeSchema,
        offsets: &'a [u32],
        neighbors: &'a [NodeId],
        attributes: &'a [u32],
    ) -> Result<Self> {
        validate_csr_structure(offsets, neighbors)?;
        validate_attribute_codes(schema, attributes, offsets.len().saturating_sub(1))?;
        Ok(Self {
            schema,
            offsets,
            neighbors,
            attributes,
            num_edges: neighbors.len() / 2,
        })
    }

    /// A view borrowing an owned snapshot's arrays (always valid — the
    /// snapshot already upholds every invariant).
    #[must_use]
    pub fn of_frozen(g: &'a FrozenGraph) -> Self {
        let (offsets, neighbors, attributes) = g.csr_parts();
        Self {
            schema: g.schema(),
            offsets,
            neighbors,
            attributes,
            num_edges: g.num_edges(),
        }
    }

    /// The attribute schema of this graph.
    #[must_use]
    pub fn schema(&self) -> AttributeSchema {
        self.schema
    }

    /// Number of nodes `n`.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of undirected edges `m`.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The sorted neighbor list of `v`, borrowed from the underlying buffer
    /// (lifetime `'a`, not the view borrow).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn neighbors_of(&self, v: NodeId) -> &'a [NodeId] {
        let idx = v as usize;
        assert!(
            idx < self.num_nodes(),
            "node id {v} out of range for graph with {} nodes",
            self.num_nodes()
        );
        let start = self.offsets.get(idx).map_or(0, |&o| o as usize);
        let end = self.offsets.get(idx + 1).map_or(start, |&o| o as usize);
        self.neighbors.get(start..end).unwrap_or(&[])
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn degree_of(&self, v: NodeId) -> usize {
        self.neighbors_of(v).len()
    }

    /// The attribute code of node `v` (0 for every node of a width-0
    /// schema, whose byte image stores no attribute section).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn attribute_code_of(&self, v: NodeId) -> u32 {
        let idx = v as usize;
        assert!(
            idx < self.num_nodes(),
            "node id {v} out of range for graph with {} nodes",
            self.num_nodes()
        );
        self.attributes.get(idx).copied().unwrap_or(0)
    }

    /// The raw CSR slices `(offsets, neighbors, attributes)`; `attributes`
    /// is empty for width-0 byte images.
    #[must_use]
    pub fn csr_slices(&self) -> (&'a [u32], &'a [NodeId], &'a [u32]) {
        (self.offsets, self.neighbors, self.attributes)
    }

    /// Copies the view into an owned [`FrozenGraph`].
    ///
    /// No re-validation: the view's own invariants (full for [`parse`] /
    /// [`new`], trust-contract for [`parse_trusted`]) carry over.
    ///
    /// [`parse`]: FrozenView::parse
    /// [`new`]: FrozenView::new
    /// [`parse_trusted`]: FrozenView::parse_trusted
    #[must_use]
    pub fn to_frozen(&self) -> FrozenGraph {
        let attributes = if self.attributes.is_empty() {
            vec![0; self.num_nodes()]
        } else {
            self.attributes.to_vec()
        };
        FrozenGraph::from_csr_unchecked(
            self.schema,
            self.offsets.to_vec(),
            self.neighbors.to_vec(),
            attributes,
            self.num_edges,
        )
    }
}

impl GraphView for FrozenView<'_> {
    fn num_nodes(&self) -> usize {
        FrozenView::num_nodes(self)
    }
    fn num_edges(&self) -> usize {
        FrozenView::num_edges(self)
    }
    fn schema(&self) -> AttributeSchema {
        FrozenView::schema(self)
    }
    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        self.neighbors_of(v)
    }
    fn attribute_code(&self, v: NodeId) -> u32 {
        self.attribute_code_of(v)
    }
    fn degree(&self, v: NodeId) -> usize {
        self.degree_of(v)
    }
}

/// How a [`MappedGraph`] holds its graph.
#[derive(Debug)]
enum Repr {
    /// Zero-copy: header scalars cached, CSR sections viewed in place in
    /// the mapping on every access.
    #[cfg(target_endian = "little")]
    Mapped {
        mapping: Mapping,
        schema: AttributeSchema,
        num_nodes: usize,
        num_edges: usize,
    },
    /// Owned snapshot: big-endian hosts (the file format is little-endian)
    /// and [`MappedGraph::from_frozen`].
    Owned(Box<FrozenGraph>),
}

/// An `.agb` graph opened for zero-copy access: a [`Mapping`] plus cached
/// header scalars, handing out [`FrozenView`]s on demand and implementing
/// [`GraphView`] directly.
///
/// `Send + Sync` — the mapping is immutable — so a registry can share one
/// across request threads behind an `Arc`.
#[derive(Debug)]
pub struct MappedGraph {
    repr: Repr,
}

impl MappedGraph {
    /// Opens `path` with the **full** validation stack (layout, alignment,
    /// checksum, every structural CSR invariant) — the zero-copy equivalent
    /// of [`io::read_binary_file`], accepting and rejecting exactly the
    /// same files. Use for untrusted input paths.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::open_impl(path.as_ref(), Tier::Full)
    }

    /// Opens `path` with layout validation and an O(n) offsets sanity scan
    /// only — microseconds-to-milliseconds for a million-node graph. For
    /// artifacts the caller itself wrote (see the module docs' trust
    /// contract).
    pub fn open_trusted<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::open_impl(path.as_ref(), Tier::Trusted)
    }

    #[cfg(target_endian = "little")]
    fn open_impl(path: &Path, tier: Tier) -> Result<Self> {
        let mapping = Mapping::open(path)?;
        let (schema, num_nodes, num_edges) = {
            let view = match tier {
                Tier::Full => FrozenView::parse(mapping.bytes())?,
                Tier::Trusted => FrozenView::parse_trusted(mapping.bytes())?,
            };
            (view.schema(), view.num_nodes(), view.num_edges())
        };
        Ok(Self {
            repr: Repr::Mapped {
                mapping,
                schema,
                num_nodes,
                num_edges,
            },
        })
    }

    #[cfg(not(target_endian = "little"))]
    fn open_impl(path: &Path, _tier: Tier) -> Result<Self> {
        // Big-endian host: the file's words need byte-swapping, so there is
        // nothing to view in place — fall back to owned deserialisation
        // (both tiers get the full validation stack).
        Ok(Self::from_frozen(io::read_binary_file(path)?))
    }

    /// Wraps an owned snapshot in the `MappedGraph` interface (no file
    /// involved; used by callers that keep one registry type for both
    /// in-memory and mapped datasets).
    #[must_use]
    pub fn from_frozen(g: FrozenGraph) -> Self {
        Self {
            repr: Repr::Owned(Box::new(g)),
        }
    }

    /// A borrowed CSR view of the graph (cheap: pointer arithmetic only).
    #[must_use]
    pub fn view(&self) -> FrozenView<'_> {
        match &self.repr {
            #[cfg(target_endian = "little")]
            Repr::Mapped {
                mapping,
                schema,
                num_nodes,
                num_edges,
            } => FrozenView::rebuild(*schema, *num_nodes, *num_edges, mapping.bytes()),
            Repr::Owned(g) => FrozenView::of_frozen(g),
        }
    }

    /// Size in bytes of the backing `.agb` image.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        match &self.repr {
            #[cfg(target_endian = "little")]
            Repr::Mapped { mapping, .. } => mapping.len(),
            Repr::Owned(g) => {
                let attr_words = if g.schema().width() > 0 {
                    g.num_nodes()
                } else {
                    0
                };
                io::HEADER_LEN
                    + 4 * (g.num_nodes() + 1)
                    + 8 * g.num_edges()
                    + 4 * attr_words
                    + io::CHECKSUM_LEN
            }
        }
    }

    /// Whether this graph is served zero-copy from a mapping (`false` for
    /// [`MappedGraph::from_frozen`] and on big-endian hosts).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        match &self.repr {
            #[cfg(target_endian = "little")]
            Repr::Mapped { .. } => true,
            Repr::Owned(_) => false,
        }
    }

    /// Copies the graph into an owned [`FrozenGraph`].
    #[must_use]
    pub fn to_frozen(&self) -> FrozenGraph {
        match &self.repr {
            #[cfg(target_endian = "little")]
            Repr::Mapped { .. } => self.view().to_frozen(),
            Repr::Owned(g) => g.as_ref().clone(),
        }
    }
}

/// Validation tier selector for [`MappedGraph::open_impl`].
enum Tier {
    Full,
    Trusted,
}

#[cfg(target_endian = "little")]
impl FrozenView<'_> {
    /// Rebuilds a view from scalars cached at open time; `bytes` is the
    /// exact image those scalars were validated against.
    fn rebuild(schema: AttributeSchema, n: usize, m: usize, bytes: &[u8]) -> FrozenView<'_> {
        let layout = io::BinaryLayout {
            n,
            m,
            width: schema.width(),
            total_len: bytes.len(),
        };
        match sections(bytes, layout) {
            Ok((offsets, neighbors, attributes)) => FrozenView {
                schema,
                offsets,
                neighbors,
                attributes,
                num_edges: m,
            },
            // Unreachable: `open` validated this exact byte image against
            // these scalars. Degrade to an empty view rather than panic.
            Err(_) => FrozenView {
                schema,
                offsets: &[],
                neighbors: &[],
                attributes: &[],
                num_edges: 0,
            },
        }
    }
}

impl GraphView for MappedGraph {
    fn num_nodes(&self) -> usize {
        self.view().num_nodes()
    }
    fn num_edges(&self) -> usize {
        self.view().num_edges()
    }
    fn schema(&self) -> AttributeSchema {
        self.view().schema()
    }
    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        self.view().neighbors_of(v)
    }
    fn attribute_code(&self, v: NodeId) -> u32 {
        self.view().attribute_code_of(v)
    }
    fn degree(&self, v: NodeId) -> usize {
        self.view().degree_of(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AttributedGraph;

    fn sample_graph() -> AttributedGraph {
        let mut g = AttributedGraph::new(6, AttributeSchema::new(2));
        g.set_all_attribute_codes(&[0, 1, 2, 3, 1, 0]).unwrap();
        for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (1, 4)] {
            g.add_edge(u, v).unwrap();
        }
        g
    }

    fn temp_agb(name: &str, g: &AttributedGraph) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("agmdp_mmap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        io::write_binary_file(g, &path).unwrap();
        path
    }

    #[test]
    fn mapped_graph_matches_owned_deserialisation() {
        let g = sample_graph();
        let frozen = g.freeze();
        let path = temp_agb("match_owned.agb", &g);
        for mapped in [
            MappedGraph::open(&path).unwrap(),
            MappedGraph::open_trusted(&path).unwrap(),
        ] {
            assert_eq!(mapped.num_nodes(), frozen.num_nodes());
            assert_eq!(mapped.num_edges(), frozen.num_edges());
            assert_eq!(mapped.schema(), frozen.schema());
            for v in frozen.nodes() {
                assert_eq!(mapped.neighbors(v), frozen.neighbors(v));
                assert_eq!(mapped.degree(v), frozen.degree(v));
                assert_eq!(mapped.attribute_code(v), frozen.attribute_code(v));
            }
            assert_eq!(mapped.to_frozen(), frozen);
            assert_eq!(io::to_text(&mapped), io::to_text(&frozen));
            assert_eq!(
                mapped.byte_len(),
                std::fs::metadata(&path).unwrap().len() as usize
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_frozen_wrapper_matches() {
        let frozen = sample_graph().freeze();
        let wrapped = MappedGraph::from_frozen(frozen.clone());
        assert!(!wrapped.is_mapped());
        assert_eq!(wrapped.to_frozen(), frozen);
        assert_eq!(io::to_binary(&wrapped).len(), wrapped.byte_len());
    }

    #[test]
    fn open_missing_file_is_io_error() {
        let err = MappedGraph::open("/definitely/not/here.agb").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }

    #[test]
    fn open_empty_file_is_bad_magic() {
        let dir = std::env::temp_dir().join(format!("agmdp_mmap_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.agb");
        std::fs::write(&path, b"").unwrap();
        assert!(matches!(
            MappedGraph::open(&path).unwrap_err(),
            GraphError::BadMagic
        ));
        assert!(matches!(
            MappedGraph::open_trusted(&path).unwrap_err(),
            GraphError::BadMagic
        ));
        std::fs::remove_file(&path).ok();
    }

    #[cfg(target_endian = "little")]
    #[test]
    fn misaligned_buffer_is_rejected() {
        let bytes = io::to_binary(&sample_graph());
        // Stage the image at an address that is ≡ 1 (mod 4) regardless of
        // the allocator's choice of base.
        let mut staged = vec![0u8; bytes.len() + 8];
        let base = staged.as_ptr() as usize;
        let shift = (1 + 4 - (base % 4)) % 4;
        for (dst, src) in staged.iter_mut().skip(shift).zip(&bytes) {
            *dst = *src;
        }
        let slice = &staged[shift..shift + bytes.len()];
        assert_eq!(slice.as_ptr() as usize % 4, 1);
        assert!(matches!(
            FrozenView::parse(slice).unwrap_err(),
            GraphError::MisalignedBinary { offset: 1 }
        ));
        assert!(matches!(
            FrozenView::parse_trusted(slice).unwrap_err(),
            GraphError::MisalignedBinary { offset: 1 }
        ));
    }

    #[cfg(target_endian = "little")]
    #[test]
    fn view_new_validates_like_from_csr() {
        let frozen = sample_graph().freeze();
        let (offsets, neighbors, attributes) = frozen.csr_parts();
        let view = FrozenView::new(frozen.schema(), offsets, neighbors, attributes).unwrap();
        assert_eq!(view.to_frozen(), frozen);
        // Asymmetric edge rejected, as in `FrozenGraph::from_csr`.
        assert!(FrozenView::new(AttributeSchema::new(0), &[0, 1, 1], &[1], &[0, 0]).is_err());
    }
}
