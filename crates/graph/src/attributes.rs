//! Attribute schemas and the `f_w` / `F_w` configuration encodings.
//!
//! The paper assumes every node carries a `w`-dimensional *binary* attribute
//! vector `x_i ∈ {0,1}^w` (Section 2.1). Two bijections are used throughout:
//!
//! * `f_w(x_i)` maps a node's attribute vector to one of `2^w` **node
//!   configurations** (the set `Y_w`).
//! * `F_w(x_i, x_j)` maps the unordered pair of attribute vectors on an edge to
//!   one of `C(2^w + 1, 2)` **edge configurations** (the set `Y^F_w`) — the
//!   number of unordered pairs with repetition of node configurations.
//!
//! We represent an attribute vector compactly as a `u32` code whose bit `j` is
//! attribute `x_{ij}`; `f_w` is then the identity on the code and `F_w` is a
//! dense triangular pair index. [`AttributeSchema`] owns the width `w` and the
//! derived cardinalities so downstream code never recomputes them.

use serde::{Deserialize, Serialize};

use crate::error::GraphError;

/// Index of a node attribute configuration, i.e. an element of `Y_w`.
pub type NodeConfigIndex = usize;

/// Index of an edge attribute configuration, i.e. an element of `Y^F_w`.
pub type EdgeConfigIndex = usize;

/// Describes the attribute space of a graph: `w` binary attributes per node.
///
/// The schema is cheap to copy and is stored inside every [`crate::AttributedGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttributeSchema {
    width: usize,
}

impl AttributeSchema {
    /// Creates a schema with `width` binary attributes per node.
    ///
    /// `width` may be zero (an unattributed graph); it is capped at 16 to keep
    /// the `2^w`-sized configuration tables practical, mirroring the paper's
    /// observation that error grows exponentially with `w`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 16`.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(
            width <= 16,
            "attribute width {width} exceeds supported maximum of 16"
        );
        Self { width }
    }

    /// The number of binary attributes per node, `w`.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// `|Y_w| = 2^w`: the number of distinct node attribute configurations.
    #[must_use]
    pub fn num_node_configs(&self) -> usize {
        1usize << self.width
    }

    /// `|Y^F_w| = C(2^w + 1, 2)`: the number of distinct unordered edge
    /// attribute configurations (pairs with repetition).
    #[must_use]
    pub fn num_edge_configs(&self) -> usize {
        let y = self.num_node_configs();
        y * (y + 1) / 2
    }

    /// Validates that `code` is a legal attribute code under this schema.
    pub fn validate_code(&self, code: u32) -> Result<(), GraphError> {
        if (code as usize) < self.num_node_configs() {
            Ok(())
        } else {
            Err(GraphError::AttributeCodeOutOfRange {
                code,
                width: self.width,
            })
        }
    }

    /// `f_w`: maps an attribute code to its node-configuration index.
    ///
    /// With the compact code representation this is the identity, but it is
    /// kept as an explicit function so call sites mirror the paper's notation.
    #[must_use]
    pub fn node_config(&self, code: u32) -> NodeConfigIndex {
        debug_assert!((code as usize) < self.num_node_configs());
        code as usize
    }

    /// `F_w`: maps the unordered pair of attribute codes on an edge to its
    /// edge-configuration index in `0..num_edge_configs()`.
    ///
    /// The mapping ignores edge direction: `edge_config(a, b) == edge_config(b, a)`.
    #[must_use]
    pub fn edge_config(&self, code_a: u32, code_b: u32) -> EdgeConfigIndex {
        let (lo, hi) = if code_a <= code_b {
            (code_a as usize, code_b as usize)
        } else {
            (code_b as usize, code_a as usize)
        };
        debug_assert!(hi < self.num_node_configs());
        // Dense triangular index over unordered pairs (lo <= hi):
        // all pairs with smaller `lo` come first.
        let y = self.num_node_configs();
        // Number of pairs whose smaller element is < lo:
        //   sum_{t=0}^{lo-1} (y - t) = lo*y - lo*(lo-1)/2
        lo * y - lo * (lo.saturating_sub(1)) / 2 + (hi - lo)
    }

    /// Inverse of [`Self::edge_config`]: returns the unordered pair
    /// `(lo, hi)` of node-configuration codes for an edge-configuration index.
    ///
    /// Returns `None` if `index` is out of range.
    #[must_use]
    pub fn edge_config_pair(&self, index: EdgeConfigIndex) -> Option<(u32, u32)> {
        if index >= self.num_edge_configs() {
            return None;
        }
        let y = self.num_node_configs();
        let mut lo = 0usize;
        let mut base = 0usize;
        loop {
            let row = y - lo; // number of pairs with this smaller element
            if index < base + row {
                let hi = lo + (index - base);
                return Some((lo as u32, hi as u32));
            }
            base += row;
            lo += 1;
        }
    }

    /// Extracts attribute `j` (0 or 1) from a code.
    pub fn attribute_of(&self, code: u32, j: usize) -> Result<u8, GraphError> {
        if j >= self.width {
            return Err(GraphError::AttributeIndexOutOfRange {
                index: j,
                width: self.width,
            });
        }
        Ok(((code >> j) & 1) as u8)
    }

    /// Builds a code from a slice of binary attribute values (`values[j]` is `x_{ij}`).
    pub fn code_from_bits(&self, values: &[u8]) -> Result<u32, GraphError> {
        if values.len() != self.width {
            return Err(GraphError::InvalidParameter(format!(
                "expected {} attribute values, got {}",
                self.width,
                values.len()
            )));
        }
        let mut code = 0u32;
        for (j, &v) in values.iter().enumerate() {
            if v > 1 {
                return Err(GraphError::InvalidParameter(format!(
                    "attribute values must be binary, got {v} at position {j}"
                )));
            }
            code |= u32::from(v) << j;
        }
        Ok(code)
    }

    /// Expands a code into its vector of binary attribute values.
    #[must_use]
    pub fn bits_from_code(&self, code: u32) -> Vec<u8> {
        (0..self.width).map(|j| ((code >> j) & 1) as u8).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_match_paper_formulas() {
        // Paper: for w = 2 binary attributes there are 2^2 = 4 node configs and
        // C(2^2+1, 2) = C(5,2) = 10 edge configs ("ten probabilities", footnote 6).
        let s = AttributeSchema::new(2);
        assert_eq!(s.num_node_configs(), 4);
        assert_eq!(s.num_edge_configs(), 10);

        let s1 = AttributeSchema::new(1);
        assert_eq!(s1.num_node_configs(), 2);
        assert_eq!(s1.num_edge_configs(), 3);

        let s0 = AttributeSchema::new(0);
        assert_eq!(s0.num_node_configs(), 1);
        assert_eq!(s0.num_edge_configs(), 1);

        let s3 = AttributeSchema::new(3);
        assert_eq!(s3.num_node_configs(), 8);
        assert_eq!(s3.num_edge_configs(), 36);
    }

    #[test]
    #[should_panic(expected = "exceeds supported maximum")]
    fn width_is_capped() {
        let _ = AttributeSchema::new(17);
    }

    #[test]
    fn edge_config_is_symmetric_and_bijective() {
        for w in 0..=4 {
            let s = AttributeSchema::new(w);
            let y = s.num_node_configs() as u32;
            let mut seen = vec![false; s.num_edge_configs()];
            for a in 0..y {
                for b in a..y {
                    let idx = s.edge_config(a, b);
                    assert_eq!(idx, s.edge_config(b, a), "F_w must ignore direction");
                    assert!(idx < s.num_edge_configs());
                    assert!(
                        !seen[idx],
                        "F_w must be injective on unordered pairs (w={w}, a={a}, b={b})"
                    );
                    seen[idx] = true;
                    assert_eq!(s.edge_config_pair(idx), Some((a, b)));
                }
            }
            assert!(seen.into_iter().all(|x| x), "F_w must be surjective");
        }
    }

    #[test]
    fn edge_config_pair_out_of_range_is_none() {
        let s = AttributeSchema::new(2);
        assert_eq!(s.edge_config_pair(10), None);
        assert!(s.edge_config_pair(9).is_some());
    }

    #[test]
    fn code_roundtrips_through_bits() {
        let s = AttributeSchema::new(3);
        for code in 0..8u32 {
            let bits = s.bits_from_code(code);
            assert_eq!(s.code_from_bits(&bits).unwrap(), code);
        }
    }

    #[test]
    fn code_from_bits_rejects_bad_input() {
        let s = AttributeSchema::new(2);
        assert!(s.code_from_bits(&[0, 1, 1]).is_err());
        assert!(s.code_from_bits(&[0, 2]).is_err());
    }

    #[test]
    fn attribute_of_extracts_bits() {
        let s = AttributeSchema::new(2);
        let code = s.code_from_bits(&[1, 0]).unwrap();
        assert_eq!(s.attribute_of(code, 0).unwrap(), 1);
        assert_eq!(s.attribute_of(code, 1).unwrap(), 0);
        assert!(s.attribute_of(code, 2).is_err());
    }

    #[test]
    fn validate_code_enforces_range() {
        let s = AttributeSchema::new(2);
        assert!(s.validate_code(3).is_ok());
        assert!(s.validate_code(4).is_err());
    }
}
