//! Induced subgraphs and node partitions.
//!
//! The sample-and-aggregate estimator for the attribute–edge correlations
//! (Appendix B.2) randomly partitions the nodes into `t = n/k` disjoint groups
//! and computes the correlation probabilities on each *induced* subgraph, so
//! that changing one node affects exactly one group. This module provides the
//! induced-subgraph extraction and the partitioning (taking a caller-supplied
//! node order so the randomness stays with the caller's seeded RNG).

use crate::graph::{AttributedGraph, NodeId};

/// Extracts the subgraph induced by `nodes`, relabeling them densely in the
/// order given. Returns the subgraph and the mapping `new id -> old id`.
///
/// Duplicate entries in `nodes` are ignored after the first occurrence;
/// out-of-range ids are skipped.
#[must_use]
pub fn induced_subgraph(g: &AttributedGraph, nodes: &[NodeId]) -> (AttributedGraph, Vec<NodeId>) {
    let n = g.num_nodes();
    let mut old_to_new = vec![u32::MAX; n];
    let mut mapping = Vec::with_capacity(nodes.len());
    for &v in nodes {
        if (v as usize) < n && old_to_new[v as usize] == u32::MAX {
            old_to_new[v as usize] = mapping.len() as u32;
            mapping.push(v);
        }
    }
    let mut sub = AttributedGraph::new(mapping.len(), g.schema());
    for (new_id, &old_id) in mapping.iter().enumerate() {
        sub.set_attribute_code(new_id as NodeId, g.attribute_code(old_id))
            .expect("attribute codes of the parent graph are always valid");
        for &nbr in g.neighbors(old_id) {
            let nbr_new = old_to_new[nbr as usize];
            if nbr_new != u32::MAX && (new_id as u32) < nbr_new {
                sub.add_edge(new_id as NodeId, nbr_new)
                    .expect("parent graph has no duplicate edges");
            }
        }
    }
    (sub, mapping)
}

/// Splits a node ordering into `ceil(len / group_size)` consecutive chunks.
///
/// The caller supplies `order` (typically a seeded random permutation of the
/// node ids); the function is deterministic given that order. Groups other
/// than possibly the last have exactly `group_size` nodes.
///
/// Returns an empty vector when `group_size == 0`.
#[must_use]
pub fn partition_nodes(order: &[NodeId], group_size: usize) -> Vec<Vec<NodeId>> {
    if group_size == 0 {
        return Vec::new();
    }
    order.chunks(group_size).map(<[NodeId]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AttributeSchema;

    fn labeled_square() -> AttributedGraph {
        let mut g = AttributedGraph::new(4, AttributeSchema::new(2));
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        g.add_edge(3, 0).unwrap();
        for v in 0..4 {
            g.set_attribute_code(v, v).unwrap();
        }
        g
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = labeled_square();
        let (sub, mapping) = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(mapping, vec![0, 1, 2]);
        // Edges 0-1 and 1-2 are internal; 2-3 and 3-0 are not.
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
        // Attributes are carried over.
        assert_eq!(sub.attribute_code(2), 2);
        sub.check_consistency().unwrap();
    }

    #[test]
    fn induced_subgraph_relabels_in_given_order() {
        let g = labeled_square();
        let (sub, mapping) = induced_subgraph(&g, &[3, 1, 0]);
        assert_eq!(mapping, vec![3, 1, 0]);
        // Old edge 3-0 becomes new edge 0-2; old edge 0-1 becomes new 1-2.
        assert!(sub.has_edge(0, 2));
        assert!(sub.has_edge(1, 2));
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(sub.attribute_code(0), 3);
    }

    #[test]
    fn induced_subgraph_ignores_duplicates_and_bad_ids() {
        let g = labeled_square();
        let (sub, mapping) = induced_subgraph(&g, &[1, 1, 9, 2]);
        assert_eq!(mapping, vec![1, 2]);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.num_edges(), 1);
    }

    #[test]
    fn induced_subgraph_of_empty_selection() {
        let g = labeled_square();
        let (sub, mapping) = induced_subgraph(&g, &[]);
        assert_eq!(sub.num_nodes(), 0);
        assert!(mapping.is_empty());
    }

    #[test]
    fn partition_nodes_chunks_correctly() {
        let order: Vec<u32> = (0..10).collect();
        let parts = partition_nodes(&order, 4);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], vec![0, 1, 2, 3]);
        assert_eq!(parts[2], vec![8, 9]);
        assert!(partition_nodes(&order, 0).is_empty());
        let exact = partition_nodes(&order, 5);
        assert_eq!(exact.len(), 2);
        assert!(exact.iter().all(|p| p.len() == 5));
    }
}
