//! # agmdp-graph
//!
//! Attributed simple-graph substrate for the AGM-DP reproduction
//! ("Publishing Attributed Social Graphs with Formal Privacy Guarantees",
//! Jorgensen, Yu & Cormode, SIGMOD 2016).
//!
//! The paper models a social network as an undirected, unweighted simple graph
//! `G = (N, E, X)` where every node carries a `w`-dimensional binary attribute
//! vector. This crate provides:
//!
//! * [`AttributedGraph`] — the core graph representation with dense `u32` node
//!   ids, sorted adjacency lists, an insertion-ordered edge list (the paper's
//!   *canonical edge ordering*, needed by edge truncation and by TriCycLe's
//!   oldest-edge rule), and per-node attribute codes.
//! * [`FrozenGraph`] — the immutable CSR snapshot of a finished graph for the
//!   read-only analysis phase, and [`GraphView`] — the trait both
//!   representations implement so every analysis function accepts either
//!   (see the [`frozen`] module docs for the freeze contract).
//! * [`AttributeSchema`] / attribute-code helpers implementing the paper's
//!   `f_w` (node-configuration) and `F_w` (edge-configuration) encodings.
//! * Structural analyses used throughout the paper: degree sequences and
//!   distributions ([`degree`]), triangle and wedge counting ([`triangles`]),
//!   local/global clustering coefficients ([`clustering`]), connected
//!   components and orphan detection ([`components`]).
//! * The edge-truncation operator µ(G, k) of Definition 2 ([`truncation`]).
//! * Induced subgraphs and random node partitions used by the
//!   sample-and-aggregate mechanism ([`subgraph`]).
//! * A plain-text interchange format for attributed graphs ([`io`]).
//! * Zero-copy loading of binary `.agb` graphs ([`mmap`]): a memory-mapped
//!   file whose CSR payload is viewed in place through [`FrozenView`] /
//!   [`MappedGraph`] instead of being deserialised into owned vectors.
//!
//! The crate is deterministic: it contains no randomness of its own (random
//! partitioning takes a caller-provided shuffled order), so all DP guarantees
//! and experiments remain reproducible from the seeds used upstream.
//!
//! ## Quick example
//!
//! ```
//! use agmdp_graph::{AttributedGraph, AttributeSchema};
//!
//! // A 4-node graph with w = 2 binary attributes per node.
//! let schema = AttributeSchema::new(2);
//! let mut g = AttributedGraph::new(4, schema);
//! g.set_attribute_code(0, 0b00).unwrap();
//! g.set_attribute_code(1, 0b01).unwrap();
//! g.set_attribute_code(2, 0b11).unwrap();
//! g.set_attribute_code(3, 0b01).unwrap();
//! g.add_edge(0, 1).unwrap();
//! g.add_edge(1, 2).unwrap();
//! g.add_edge(2, 0).unwrap();
//! g.add_edge(2, 3).unwrap();
//!
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.num_edges(), 4);
//! assert_eq!(agmdp_graph::triangles::count_triangles(&g), 1);
//! ```

// `deny` rather than `forbid`: the [`mmap`] module is the one sanctioned
// exception (raw `mmap`/`munmap` bindings and the byte→word reinterpretation
// of the zero-copy load path — the container has no libc or bytemuck crate),
// and `forbid` would reject even its scoped `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod attributes;
pub mod builder;
pub mod categorical;
pub mod clustering;
pub mod components;
pub mod degree;
pub mod error;
pub mod frozen;
pub mod graph;
pub mod io;
#[allow(unsafe_code)]
pub mod mmap;
pub mod subgraph;
pub mod triangles;
pub mod truncation;
pub mod view;

pub use attributes::{AttributeSchema, EdgeConfigIndex, NodeConfigIndex};
pub use builder::GraphBuilder;
pub use error::GraphError;
pub use frozen::FrozenGraph;
pub use graph::{AttributedGraph, Edge, NodeId};
pub use mmap::{FrozenView, MappedGraph};
pub use view::GraphView;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
