//! The [`GraphView`] read-only abstraction over graph representations.
//!
//! The AGM-DP pipeline is write-once/read-many: a graph is built (or loaded)
//! exactly once during synthesis, then traversed repeatedly by metrics,
//! acceptance checks and the evaluation harness. `GraphView` captures exactly
//! the read surface those consumers need — node/edge counts, sorted neighbor
//! slices and attribute codes — so every analysis function can run unchanged
//! on both the mutable [`AttributedGraph`](crate::AttributedGraph) (build
//! phase) and the immutable CSR [`FrozenGraph`](crate::FrozenGraph) snapshot
//! (analysis phase).
//!
//! All provided methods are defined in terms of the five required accessors
//! and use the *same* iteration orders as `AttributedGraph`'s inherent
//! methods, so a computation over a frozen snapshot is bit-identical to the
//! same computation over the adjacency-list original — the invariance the
//! committed golden evaluation aggregates pin down.

use crate::attributes::{AttributeSchema, EdgeConfigIndex};
use crate::graph::{Edge, NodeId};

/// Read-only access to an undirected attributed simple graph.
///
/// Implemented by [`AttributedGraph`](crate::AttributedGraph) (the mutable
/// build-phase representation) and [`FrozenGraph`](crate::FrozenGraph) (the
/// immutable CSR snapshot). Analysis code should be generic over `GraphView`
/// and never require mutation.
pub trait GraphView {
    /// Number of nodes `n = |N|`.
    fn num_nodes(&self) -> usize;

    /// Number of undirected edges `m = |E|`.
    fn num_edges(&self) -> usize;

    /// The attribute schema of the graph.
    fn schema(&self) -> AttributeSchema;

    /// The sorted neighbor list `Γ(v)` of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range (use [`GraphView::nodes`] to iterate
    /// safely).
    fn neighbors(&self, v: NodeId) -> &[NodeId];

    /// The attribute code (`f_w` encoding) of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    fn attribute_code(&self, v: NodeId) -> u32;

    /// Iterator over all node ids `0..n`.
    fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Allocation-free iterator over all node degrees, by node id.
    ///
    /// This is the hot-path replacement for the allocating
    /// [`GraphView::degrees`]: callers that only fold over the sequence
    /// (histograms, maxima, sums) should consume the iterator directly.
    fn degree_iter(&self) -> impl Iterator<Item = usize> + '_
    where
        Self: Sized,
    {
        self.nodes().map(move |v| self.degree(v))
    }

    /// The degrees of all nodes, indexed by node id.
    ///
    /// Allocates; prefer [`GraphView::degree_iter`] on hot paths.
    fn degrees(&self) -> Vec<usize>
    where
        Self: Sized,
    {
        self.degree_iter().collect()
    }

    /// Maximum degree `d_max` (0 for an empty graph).
    fn max_degree(&self) -> usize
    where
        Self: Sized,
    {
        self.degree_iter().max().unwrap_or(0)
    }

    /// Average degree `2m / n` (0 for an empty graph).
    fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Returns `true` if the undirected edge `(u, v)` is present.
    ///
    /// Out-of-range endpoints return `false`. Searches the shorter of the two
    /// neighbor lists in `O(log d)`.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if (u as usize) >= self.num_nodes() || (v as usize) >= self.num_nodes() {
            return false;
        }
        let (a, b) = if self.neighbors(u).len() <= self.neighbors(v).len() {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Number of common neighbors `|Γ(u) ∩ Γ(v)|`, computed by a sorted merge
    /// in `O(d_u + d_v)`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    fn common_neighbor_count(&self, u: NodeId, v: NodeId) -> usize {
        let a = self.neighbors(u);
        let b = self.neighbors(v);
        let mut i = 0;
        let mut j = 0;
        let mut count = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Enumerates all edges in canonical (lexicographic) order with `u < v` —
    /// the same order [`AttributedGraph::edges`](crate::AttributedGraph::edges)
    /// produces.
    fn edges(&self) -> impl Iterator<Item = Edge> + '_
    where
        Self: Sized,
    {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| Edge { u, v })
        })
    }

    /// The edge-configuration index `F_w(x_u, x_v)` of an edge's endpoints.
    ///
    /// The edge does not need to be present; the value depends only on the
    /// endpoints' current attribute codes.
    fn edge_config(&self, u: NodeId, v: NodeId) -> EdgeConfigIndex {
        self.schema()
            .edge_config(self.attribute_code(u), self.attribute_code(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AttributedGraph;

    /// A minimal hand-rolled implementation to exercise every provided method
    /// independently of the two real representations.
    struct PathView {
        lists: Vec<Vec<NodeId>>,
    }

    impl PathView {
        fn new(n: usize) -> Self {
            let lists = (0..n)
                .map(|v| {
                    let mut l = Vec::new();
                    if v > 0 {
                        l.push((v - 1) as NodeId);
                    }
                    if v + 1 < n {
                        l.push((v + 1) as NodeId);
                    }
                    l
                })
                .collect();
            Self { lists }
        }
    }

    impl GraphView for PathView {
        fn num_nodes(&self) -> usize {
            self.lists.len()
        }
        fn num_edges(&self) -> usize {
            self.lists.len().saturating_sub(1)
        }
        fn schema(&self) -> AttributeSchema {
            AttributeSchema::new(0)
        }
        fn neighbors(&self, v: NodeId) -> &[NodeId] {
            &self.lists[v as usize]
        }
        fn attribute_code(&self, _v: NodeId) -> u32 {
            0
        }
    }

    #[test]
    fn provided_methods_on_custom_view() {
        let p = PathView::new(4);
        assert_eq!(p.degrees(), vec![1, 2, 2, 1]);
        assert_eq!(p.degree_iter().sum::<usize>(), 6);
        assert_eq!(p.max_degree(), 2);
        assert!((p.avg_degree() - 1.5).abs() < 1e-12);
        assert!(p.has_edge(0, 1));
        assert!(p.has_edge(1, 0));
        assert!(!p.has_edge(0, 2));
        assert!(!p.has_edge(0, 99));
        assert_eq!(p.common_neighbor_count(0, 2), 1);
        let edges: Vec<Edge> = p.edges().collect();
        assert_eq!(
            edges,
            vec![
                Edge { u: 0, v: 1 },
                Edge { u: 1, v: 2 },
                Edge { u: 2, v: 3 }
            ]
        );
    }

    #[test]
    fn trait_agrees_with_attributed_graph_inherent_methods() {
        let mut g = AttributedGraph::unattributed(5);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)] {
            g.add_edge(u, v).unwrap();
        }
        fn generic_summary<G: GraphView>(g: &G) -> (usize, usize, Vec<usize>, usize) {
            (g.num_nodes(), g.num_edges(), g.degrees(), g.edges().count())
        }
        let (n, m, degs, edge_count) = generic_summary(&g);
        assert_eq!(n, g.num_nodes());
        assert_eq!(m, g.num_edges());
        assert_eq!(degs, g.degrees());
        assert_eq!(edge_count, g.edges().count());
        // has_edge / common neighbors agree including argument order.
        for u in 0..5u32 {
            for v in 0..5u32 {
                assert_eq!(GraphView::has_edge(&g, u, v), g.has_edge(u, v));
                if u != v {
                    assert_eq!(
                        GraphView::common_neighbor_count(&g, u, v),
                        g.common_neighbor_count(u, v)
                    );
                }
            }
        }
    }
}
