//! A forgiving builder for constructing [`AttributedGraph`]s from raw data.
//!
//! The datasets used by the paper (Appendix A) arrive as edge lists that may
//! contain duplicate edges, reversed duplicates (the paper keeps only mutual
//! relationships of directed crawls) and self-loops. [`GraphBuilder`] absorbs
//! those quirks: duplicates and self-loops are silently skipped and counted,
//! so callers can report how much cleaning was applied.

use crate::attributes::AttributeSchema;
use crate::graph::{AttributedGraph, NodeId};
use crate::Result;

/// Incrementally builds an [`AttributedGraph`], tolerating duplicate edges and
/// self-loops in the input.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    graph: AttributedGraph,
    skipped_duplicates: usize,
    skipped_self_loops: usize,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` nodes and the given schema.
    #[must_use]
    pub fn new(n: usize, schema: AttributeSchema) -> Self {
        Self {
            graph: AttributedGraph::new(n, schema),
            skipped_duplicates: 0,
            skipped_self_loops: 0,
        }
    }

    /// Starts a builder for an unattributed graph with `n` nodes.
    #[must_use]
    pub fn unattributed(n: usize) -> Self {
        Self::new(n, AttributeSchema::new(0))
    }

    /// Adds an edge, skipping duplicates and self-loops without error.
    ///
    /// Out-of-range node ids still produce an error, because they indicate a
    /// corrupted input rather than ordinary dataset noise.
    pub fn edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut Self> {
        if u == v {
            self.skipped_self_loops += 1;
            return Ok(self);
        }
        if !self.graph.try_add_edge(u, v)? {
            self.skipped_duplicates += 1;
        }
        Ok(self)
    }

    /// Adds many edges at once (same semantics as [`Self::edge`]).
    pub fn edges<I>(&mut self, iter: I) -> Result<&mut Self>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        for (u, v) in iter {
            self.edge(u, v)?;
        }
        Ok(self)
    }

    /// Sets the attribute code of a node.
    pub fn attribute(&mut self, v: NodeId, code: u32) -> Result<&mut Self> {
        self.graph.set_attribute_code(v, code)?;
        Ok(self)
    }

    /// Number of duplicate edges that were skipped so far.
    #[must_use]
    pub fn skipped_duplicates(&self) -> usize {
        self.skipped_duplicates
    }

    /// Number of self-loops that were skipped so far.
    #[must_use]
    pub fn skipped_self_loops(&self) -> usize {
        self.skipped_self_loops
    }

    /// Finishes construction and returns the graph.
    #[must_use]
    pub fn build(self) -> AttributedGraph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_skips_noise_and_counts_it() {
        let mut b = GraphBuilder::unattributed(4);
        b.edges([(0, 1), (1, 0), (1, 1), (1, 2), (2, 3), (0, 1)])
            .unwrap();
        assert_eq!(b.skipped_duplicates(), 2);
        assert_eq!(b.skipped_self_loops(), 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
        g.check_consistency().unwrap();
    }

    #[test]
    fn builder_sets_attributes() {
        let mut b = GraphBuilder::new(2, AttributeSchema::new(2));
        b.attribute(0, 3).unwrap();
        b.edge(0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.attribute_code(0), 3);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn builder_rejects_out_of_range_nodes() {
        let mut b = GraphBuilder::unattributed(2);
        assert!(b.edge(0, 5).is_err());
        assert!(b.attribute(7, 0).is_err());
    }

    #[test]
    fn builder_chained_calls() {
        let mut b = GraphBuilder::unattributed(3);
        b.edge(0, 1).unwrap().edge(1, 2).unwrap();
        assert_eq!(b.build().num_edges(), 2);
    }
}
