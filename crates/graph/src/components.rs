//! Connected components and orphaned-node detection.
//!
//! The paper assumes input graphs are connected (only the main connected
//! component of each dataset is kept, Appendix A) and defines an *orphaned*
//! node as one that is not part of the main connected component of a generated
//! graph (Section 3.3, footnote 2). The orphan post-processing step
//! (Algorithm 2) repeatedly queries these notions.

use crate::graph::{AttributedGraph, NodeId};
use crate::view::GraphView;

/// Labels each node with a component id in `0..num_components` and returns the
/// labels together with the component sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Component id of each node.
    pub labels: Vec<u32>,
    /// Size of each component, indexed by component id.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    #[must_use]
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Id of the largest component (ties broken by smallest id); `None` for an
    /// empty graph.
    #[must_use]
    pub fn largest(&self) -> Option<u32> {
        self.sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(id, _)| id as u32)
    }

    /// Nodes belonging to the largest component.
    #[must_use]
    pub fn largest_component_nodes(&self) -> Vec<NodeId> {
        match self.largest() {
            None => Vec::new(),
            Some(id) => self
                .labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == id)
                .map(|(v, _)| v as NodeId)
                .collect(),
        }
    }

    /// Nodes *not* in the largest component — the paper's orphaned nodes.
    #[must_use]
    pub fn orphaned_nodes(&self) -> Vec<NodeId> {
        match self.largest() {
            None => Vec::new(),
            Some(id) => self
                .labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l != id)
                .map(|(v, _)| v as NodeId)
                .collect(),
        }
    }
}

/// Computes connected components with an iterative BFS (no recursion, so deep
/// graphs cannot overflow the stack).
#[must_use]
pub fn connected_components<G: GraphView>(g: &G) -> Components {
    let n = g.num_nodes();
    let mut labels = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue: Vec<NodeId> = Vec::new();
    for start in 0..n {
        if labels[start] != u32::MAX {
            continue;
        }
        let comp = sizes.len() as u32;
        let mut size = 0usize;
        labels[start] = comp;
        queue.clear();
        queue.push(start as NodeId);
        while let Some(v) = queue.pop() {
            size += 1;
            for &w in g.neighbors(v) {
                if labels[w as usize] == u32::MAX {
                    labels[w as usize] = comp;
                    queue.push(w);
                }
            }
        }
        sizes.push(size);
    }
    Components { labels, sizes }
}

/// Returns `true` if the graph is connected (trivially true for `n <= 1`).
#[must_use]
pub fn is_connected<G: GraphView>(g: &G) -> bool {
    g.num_nodes() <= 1 || connected_components(g).count() == 1
}

/// Extracts the subgraph induced by the largest connected component, relabeling
/// nodes densely. Returns the new graph and the mapping `new id -> old id`.
#[must_use]
pub fn largest_component_subgraph(g: &AttributedGraph) -> (AttributedGraph, Vec<NodeId>) {
    let comps = connected_components(g);
    let keep = comps.largest_component_nodes();
    crate::subgraph::induced_subgraph(g, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AttributedGraph;

    #[test]
    fn single_component_path() {
        let mut g = AttributedGraph::unattributed(4);
        for v in 1..4 {
            g.add_edge(v - 1, v).unwrap();
        }
        let c = connected_components(&g);
        assert_eq!(c.count(), 1);
        assert!(is_connected(&g));
        assert!(c.orphaned_nodes().is_empty());
        assert_eq!(c.largest_component_nodes().len(), 4);
    }

    #[test]
    fn two_components_and_isolated_node() {
        let mut g = AttributedGraph::unattributed(6);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(3, 4).unwrap();
        // node 5 isolated
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        assert!(!is_connected(&g));
        assert_eq!(c.sizes.iter().sum::<usize>(), 6);
        let orphans = c.orphaned_nodes();
        assert_eq!(orphans, vec![3, 4, 5]);
        assert_eq!(c.largest_component_nodes(), vec![0, 1, 2]);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = AttributedGraph::unattributed(0);
        let c = connected_components(&g);
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest(), None);
        assert!(is_connected(&g));
        assert!(is_connected(&AttributedGraph::unattributed(1)));
    }

    #[test]
    fn largest_component_extraction_preserves_structure() {
        let mut g = AttributedGraph::new(5, crate::AttributeSchema::new(1));
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(0, 2).unwrap();
        g.add_edge(3, 4).unwrap();
        g.set_attribute_code(2, 1).unwrap();
        let (sub, mapping) = largest_component_subgraph(&g);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(mapping, vec![0, 1, 2]);
        // Attribute carried over.
        assert_eq!(sub.attribute_code(2), 1);
        assert_eq!(crate::triangles::count_triangles(&sub), 1);
    }

    #[test]
    fn largest_ties_resolved_deterministically() {
        let mut g = AttributedGraph::unattributed(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(2, 3).unwrap();
        let c = connected_components(&g);
        // Both components have size 2; the smaller id wins.
        assert_eq!(c.largest(), Some(0));
    }
}
