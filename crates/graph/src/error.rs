//! Error types for the graph substrate.

use std::fmt;

/// Errors produced by graph construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id was out of range for the graph.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The number of nodes in the graph.
        num_nodes: usize,
    },
    /// A self-loop was requested; the paper's graphs are simple.
    SelfLoop {
        /// The node on which the self-loop was attempted.
        node: u32,
    },
    /// The edge already exists (multi-edges are not allowed in a simple graph).
    DuplicateEdge {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
    /// The requested edge does not exist.
    MissingEdge {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
    /// An attribute code exceeded the schema's `2^w` configurations.
    AttributeCodeOutOfRange {
        /// The offending code.
        code: u32,
        /// The attribute width `w`.
        width: usize,
    },
    /// An attribute index exceeded the schema width.
    AttributeIndexOutOfRange {
        /// The offending attribute position.
        index: usize,
        /// The attribute width `w`.
        width: usize,
    },
    /// A parameter was invalid (empty graph, zero width, etc.).
    InvalidParameter(String),
    /// Failure while parsing or writing the text interchange format.
    Format(String),
    /// A binary graph file did not start with the `.agb` magic bytes.
    BadMagic,
    /// A binary graph file declared a format version this build cannot read.
    UnsupportedVersion {
        /// The version recorded in the file header.
        found: u32,
        /// The newest version this build supports.
        supported: u32,
    },
    /// A binary graph file ended before the declared payload was complete.
    TruncatedBinary {
        /// Bytes the header implies the file must contain.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// A binary graph buffer is not 4-byte aligned, so its CSR words cannot
    /// be viewed in place (mappings are page-aligned; this arises only for
    /// borrowed byte slices carved out at odd offsets).
    MisalignedBinary {
        /// The buffer's address modulo the required 4-byte alignment.
        offset: usize,
    },
    /// The trailing checksum of a binary graph file does not match its
    /// contents (bit rot or an interrupted write).
    ChecksumMismatch {
        /// The checksum stored in the file.
        stored: u64,
        /// The checksum computed over the file's contents.
        computed: u64,
    },
    /// An underlying I/O error (carried as a string so the error stays `Clone + Eq`).
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::SelfLoop { node } => {
                write!(
                    f,
                    "self-loop on node {node} is not allowed in a simple graph"
                )
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "edge ({u}, {v}) already exists")
            }
            GraphError::MissingEdge { u, v } => write!(f, "edge ({u}, {v}) does not exist"),
            GraphError::AttributeCodeOutOfRange { code, width } => {
                write!(f, "attribute code {code} out of range for width {width}")
            }
            GraphError::AttributeIndexOutOfRange { index, width } => {
                write!(f, "attribute index {index} out of range for width {width}")
            }
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            GraphError::Format(msg) => write!(f, "format error: {msg}"),
            GraphError::BadMagic => {
                write!(f, "not a binary graph file (missing AGB magic bytes)")
            }
            GraphError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported binary graph version {found} (this build reads up to {supported})"
                )
            }
            GraphError::TruncatedBinary { expected, actual } => {
                write!(
                    f,
                    "truncated binary graph file: expected {expected} bytes, found {actual}"
                )
            }
            GraphError::MisalignedBinary { offset } => {
                write!(
                    f,
                    "binary graph buffer is misaligned (address is {offset} mod 4; CSR words need 4-byte alignment)"
                )
            }
            GraphError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "binary graph checksum mismatch: file records {stored:#018x}, contents hash to {computed:#018x}"
                )
            }
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange {
            node: 7,
            num_nodes: 3,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));

        let e = GraphError::SelfLoop { node: 2 };
        assert!(e.to_string().contains("self-loop"));

        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("already exists"));

        let e = GraphError::MissingEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("does not exist"));

        let e = GraphError::AttributeCodeOutOfRange { code: 9, width: 2 };
        assert!(e.to_string().contains("attribute code"));

        let e = GraphError::AttributeIndexOutOfRange { index: 5, width: 2 };
        assert!(e.to_string().contains("attribute index"));

        let e = GraphError::InvalidParameter("w must be positive".into());
        assert!(e.to_string().contains("w must be positive"));

        let e = GraphError::Format("bad header".into());
        assert!(e.to_string().contains("bad header"));

        let e = GraphError::MisalignedBinary { offset: 1 };
        assert!(e.to_string().contains("misaligned"));
        assert!(e.to_string().contains("4-byte"));
    }

    #[test]
    fn io_error_converts() {
        let io_err = std::io::Error::new(std::io::ErrorKind::NotFound, "missing file");
        let e: GraphError = io_err.into();
        assert!(matches!(e, GraphError::Io(_)));
        assert!(e.to_string().contains("missing file"));
    }

    #[test]
    fn error_is_clone_and_eq() {
        let a = GraphError::DuplicateEdge { u: 1, v: 2 };
        let b = a.clone();
        assert_eq!(a, b);
    }
}
