//! Cross-crate integration tests: the full AGM-DP pipeline from dataset
//! generation through private learning, synthesis, evaluation and I/O.

use agmdp::core::correlations_dp::CorrelationMethod;
use agmdp::core::ThetaF;
use agmdp::graph::clustering::average_local_clustering;
use agmdp::graph::components::is_connected;
use agmdp::graph::triangles::count_triangles;
use agmdp::metrics::distance::hellinger_distance;
use agmdp::prelude::*;
use rand::SeedableRng;

type Rng = rand::rngs::StdRng;

fn small_input() -> AttributedGraph {
    generate_dataset(&DatasetSpec::lastfm().scaled(0.15), 2024).expect("dataset generation")
}

#[test]
fn full_pipeline_produces_a_publishable_graph() {
    let input = small_input();
    let config = AgmConfig {
        privacy: Privacy::Dp { epsilon: 1.0 },
        model: StructuralModelKind::TriCycLe,
        ..AgmConfig::default()
    };
    let mut rng = Rng::seed_from_u64(1);
    let synthetic = synthesize(&input, &config, &mut rng).expect("synthesis");

    // Same node universe and schema, structurally plausible.
    assert_eq!(synthetic.num_nodes(), input.num_nodes());
    assert_eq!(synthetic.schema(), input.schema());
    assert!(synthetic.num_edges() > 0);
    assert!(
        is_connected(&synthetic),
        "orphan post-processing must leave the graph connected"
    );
    synthetic.check_consistency().expect("internal invariants");

    // The synthetic graph must not simply copy the input's edge set.
    let input_edges: std::collections::BTreeSet<_> = input.edges().map(|e| (e.u, e.v)).collect();
    let shared = synthetic
        .edges()
        .filter(|e| input_edges.contains(&(e.u, e.v)))
        .count();
    assert!(
        (shared as f64) < 0.9 * input.num_edges() as f64,
        "synthetic graph shares {shared} of {} input edges — too close to a copy",
        input.num_edges()
    );

    // Round-trip through the text format.
    let dir = std::env::temp_dir().join("agmdp_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("synthetic.graph");
    agmdp::graph::io::write_file(&synthetic, &path).expect("write");
    let reloaded = agmdp::graph::io::read_file(&path).expect("read");
    assert_eq!(reloaded.num_edges(), synthetic.num_edges());
    assert_eq!(reloaded.attribute_codes(), synthetic.attribute_codes());
    std::fs::remove_file(&path).ok();
}

#[test]
fn non_private_mode_is_more_faithful_than_strong_privacy() {
    let input = small_input();
    let mut rng = Rng::seed_from_u64(2);
    let trials = 3;

    let mean_hellinger = |privacy: Privacy, rng: &mut Rng| {
        let config = AgmConfig {
            privacy,
            model: StructuralModelKind::TriCycLe,
            ..AgmConfig::default()
        };
        let truth = ThetaF::from_graph(&input);
        (0..trials)
            .map(|_| {
                let synth = synthesize(&input, &config, rng).expect("synthesis");
                let achieved = ThetaF::from_graph(&synth);
                hellinger_distance(truth.probabilities(), achieved.probabilities())
            })
            .sum::<f64>()
            / trials as f64
    };

    let non_private = mean_hellinger(Privacy::NonPrivate, &mut rng);
    let strong = mean_hellinger(Privacy::Dp { epsilon: 0.1 }, &mut rng);
    assert!(
        non_private <= strong + 0.05,
        "non-private correlations (H = {non_private}) should not be worse than eps = 0.1 (H = {strong})"
    );
}

#[test]
fn both_structural_models_work_with_every_correlation_method() {
    let input = agmdp::datasets::toy_social_graph();
    let mut rng = Rng::seed_from_u64(3);
    for model in [StructuralModelKind::Fcl, StructuralModelKind::TriCycLe] {
        for method in [
            CorrelationMethod::EdgeTruncation { k: None },
            CorrelationMethod::SmoothSensitivity { delta: 0.01 },
            CorrelationMethod::SampleAggregate { group_size: 10 },
            CorrelationMethod::NaiveLaplace,
        ] {
            let config = AgmConfig {
                privacy: Privacy::Dp { epsilon: 1.0 },
                model,
                correlation_method: method,
                ..AgmConfig::default()
            };
            let synth = synthesize(&input, &config, &mut rng)
                .unwrap_or_else(|e| panic!("{model:?} + {method:?} failed: {e}"));
            assert_eq!(synth.num_nodes(), input.num_nodes());
            assert!(synth.num_edges() > 0);
        }
    }
}

#[test]
fn tricycle_preserves_clustering_far_better_than_fcl_under_dp() {
    // Clustering of a single DP draw is noisy, so compare means over several
    // trials (one draw per model occasionally flips the ordering by chance).
    // ε = 2 keeps the degree-sequence noise from dominating at this tiny
    // scale: at ε = 1 the Laplace noise inflates hub degrees enough that FCL
    // gains clustering by accident and the two models tie in expectation,
    // which is a scale artifact rather than the paper's regime (Tables 2-5
    // report TriCycLe's advantage growing with ε).
    let input = small_input();
    let mut rng = Rng::seed_from_u64(4);
    let epsilon = 2.0;
    let trials = 6;
    let clustering_error = |model: StructuralModelKind, rng: &mut Rng| {
        let config = AgmConfig {
            privacy: Privacy::Dp { epsilon },
            model,
            ..AgmConfig::default()
        };
        let truth = average_local_clustering(&input);
        (0..trials)
            .map(|_| {
                let synth = synthesize(&input, &config, rng).expect("synthesis");
                (average_local_clustering(&synth) - truth).abs() / truth
            })
            .sum::<f64>()
            / trials as f64
    };
    let fcl_err = clustering_error(StructuralModelKind::Fcl, &mut rng);
    let tri_err = clustering_error(StructuralModelKind::TriCycLe, &mut rng);
    assert!(
        tri_err < fcl_err,
        "TriCycLe clustering error {tri_err} should beat FCL {fcl_err} (paper Tables 2-5)"
    );
}

#[test]
fn learned_parameters_expose_consistent_dimensions() {
    let input = small_input();
    let config = AgmConfig {
        privacy: Privacy::Dp { epsilon: 0.5 },
        ..AgmConfig::default()
    };
    let mut rng = Rng::seed_from_u64(5);
    let params = agmdp::core::workflow::learn_parameters(&input, &config, &mut rng).unwrap();
    assert_eq!(params.num_nodes, input.num_nodes());
    assert_eq!(params.theta_x.probabilities().len(), 4);
    assert_eq!(params.theta_f.probabilities().len(), 10);
    assert_eq!(params.theta_m.degree_sequence.len(), input.num_nodes());
    assert!(params.theta_m.triangles.is_some());
    // Both distributions are normalised.
    assert!((params.theta_x.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!((params.theta_f.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

#[test]
fn synthetic_triangle_count_tracks_the_dp_estimate() {
    let input = small_input();
    let true_triangles = count_triangles(&input) as f64;
    let config = AgmConfig {
        privacy: Privacy::Dp { epsilon: 2.0 },
        model: StructuralModelKind::TriCycLe,
        ..AgmConfig::default()
    };
    let mut rng = Rng::seed_from_u64(6);
    let synth = synthesize(&input, &config, &mut rng).unwrap();
    let got = count_triangles(&synth) as f64;
    assert!(
        (got - true_triangles).abs() / true_triangles < 0.6,
        "triangles {got} too far from input {true_triangles}"
    );
}
