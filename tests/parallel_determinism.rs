//! Determinism contract of the parallel synthesis engine, verified end to
//! end: at a fixed seed the full AGM-DP pipeline must emit **byte-identical**
//! serialized graphs no matter how many worker threads sample it, across
//! seeds, structural models and privacy settings.

use agmdp::core::workflow::{
    learn_parameters, synthesize, synthesize_from_parameters, AgmConfig, Privacy,
    StructuralModelKind,
};
use agmdp::datasets::{generate_dataset, DatasetSpec};
use agmdp::graph::io;
use proptest::prelude::*;
use rand::SeedableRng;

type Rng = rand::rngs::StdRng;

/// Serialized output of one full synthesis run at a given thread count.
fn synthesized_text(
    seed: u64,
    model: StructuralModelKind,
    privacy: Privacy,
    threads: usize,
) -> String {
    let input = agmdp::datasets::toy_social_graph();
    let config = AgmConfig {
        privacy,
        model,
        threads,
        ..AgmConfig::default()
    };
    let mut rng = Rng::seed_from_u64(seed);
    let synthetic = synthesize(&input, &config, &mut rng).expect("synthesis");
    io::to_text(&synthetic)
}

proptest! {
    // Each case runs 4 × 2 full pipelines on the toy graph; keep the case
    // count modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// threads = 1 and threads ∈ {2, 5, 8} produce byte-identical output for
    /// arbitrary seeds, both structural models and both privacy modes.
    /// (The vendored proptest subset has no `any::<T>()`; ranges are the
    /// strategy vocabulary, with `0..2` standing in for `bool`.)
    #[test]
    fn synthesis_bytes_are_thread_count_invariant(
        seed in 0u64..u64::MAX,
        fcl in 0u8..2,
        non_private in 0u8..2,
    ) {
        let model = if fcl == 1 { StructuralModelKind::Fcl } else { StructuralModelKind::TriCycLe };
        let privacy = if non_private == 1 {
            Privacy::NonPrivate
        } else {
            Privacy::Dp { epsilon: 1.0 }
        };
        let serial = synthesized_text(seed, model, privacy, 1);
        for threads in [2usize, 5, 8] {
            let parallel = synthesized_text(seed, model, privacy, threads);
            prop_assert_eq!(
                &parallel, &serial,
                "threads = {} diverged from serial at seed {} ({:?})",
                threads, seed, model
            );
        }
    }
}

/// Multi-chunk coverage: the toy graph above fits in a single
/// `ExecPolicy::DEFAULT_CHUNK_SIZE` chunk, where every thread count takes
/// the executor's inline path. This input is large enough (~12.7k target
/// edges, so ~25k proposals in the first sampling round) that each round
/// spans several chunks and `threads = 8` really schedules them across
/// scoped workers — an out-of-order merge or a lost chunk would diverge.
#[test]
fn multi_chunk_synthesis_is_thread_count_invariant() {
    let input = generate_dataset(&DatasetSpec::lastfm(), 2016).expect("dataset");
    for model in [StructuralModelKind::Fcl, StructuralModelKind::TriCycLe] {
        let synth = |threads: usize| {
            let config = AgmConfig {
                privacy: Privacy::Dp { epsilon: 1.0 },
                model,
                threads,
                ..AgmConfig::default()
            };
            let mut rng = Rng::seed_from_u64(5);
            io::to_text(&synthesize(&input, &config, &mut rng).expect("synthesis"))
        };
        let serial = synth(1);
        assert_eq!(synth(8), serial, "{model:?} diverged at 8 threads");
    }
}

/// The exact per-chunk draw sequence of the alias-table sampler behind a
/// [`agmdp::models::BlockRng`] buffer, version-pinned. The goldens
/// (`tests/golden/eval_smoke_aggregates.json`) pin the whole pipeline; this
/// pins the primitive underneath so an accidental change to alias-table
/// layout, the combined slot/sub-mass draw, or block buffering is reported
/// here — at the sampler — instead of as an opaque golden diff. Changing
/// this sequence is allowed exactly when the goldens are intentionally
/// re-pinned in the same change.
#[test]
fn chunked_draw_sequence_is_version_pinned() {
    use agmdp::models::parallel::{chunk_rng, BlockRng};
    use agmdp::models::PiSampler;
    let pi = PiSampler::from_degrees(&[5, 1, 3, 1, 2]).expect("valid degrees");
    let expected: [&[u32]; 2] = [
        &[4, 1, 4, 0, 4, 3, 2, 2, 4, 0, 3, 0, 4, 2, 0, 1],
        &[2, 4, 0, 4, 2, 0, 2, 0, 1, 2, 2, 0, 2, 3, 0, 0],
    ];
    for (chunk, want) in expected.iter().enumerate() {
        let mut rng = BlockRng::new(chunk_rng(2016, chunk as u64));
        let got: Vec<u32> = (0..want.len()).map(|_| pi.sample(&mut rng)).collect();
        assert_eq!(&got, want, "draw sequence moved for chunk {chunk}");
    }
}

/// The sampler rewrite must not buy determinism by waiving lints: the
/// workspace lints clean with **zero waivers**, not just zero unwaived
/// findings. (`crates/analysis/tests/workspace_clean.rs` pins the latter;
/// this pins the stronger invariant at the integration tier.)
#[test]
fn the_workspace_lints_clean_with_zero_waivers() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = agmdp::analysis::lint_workspace(root).expect("workspace sources are readable");
    assert!(report.files_scanned > 0, "walker found no sources");
    assert!(
        report.findings.is_empty(),
        "expected zero findings (waived or not), got:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("{}:{}:{} {}", f.file, f.line, f.column, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The cached-parameter path of the service relies on the same contract one
/// level down: re-sampling from fixed learned parameters must not depend on
/// the thread count either.
#[test]
fn sampling_from_cached_parameters_is_thread_count_invariant() {
    let input = agmdp::datasets::toy_social_graph();
    let learn_config = AgmConfig::default();
    let mut learn_rng = Rng::seed_from_u64(17);
    let params = learn_parameters(&input, &learn_config, &mut learn_rng).expect("learning");
    let sample = |threads: usize| {
        let config = AgmConfig {
            threads,
            ..AgmConfig::default()
        };
        let mut rng = Rng::seed_from_u64(99);
        io::to_text(&synthesize_from_parameters(&params, &config, &mut rng).expect("sampling"))
    };
    let serial = sample(1);
    for threads in [3, 8] {
        assert_eq!(sample(threads), serial);
    }
}
