//! Cross-crate property-based tests (proptest) on the invariants that the
//! paper's privacy and utility arguments rely on.

use agmdp::core::acceptance::acceptance_probabilities;
use agmdp::core::params::{edge_config_counts, node_config_counts, ThetaF, ThetaX};
use agmdp::graph::degree::DegreeSequence;
use agmdp::graph::truncation::edge_truncation;
use agmdp::graph::{AttributeSchema, AttributedGraph};
use agmdp::metrics::distance::{hellinger_distance, ks_statistic};
use agmdp::privacy::constrained_inference::isotonic_regression;
use agmdp::privacy::postprocess::normalize;
use proptest::prelude::*;

/// Builds an arbitrary attributed graph from a node count, an edge pool and
/// attribute codes.
fn arbitrary_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = AttributedGraph> {
    (2usize..max_nodes).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_edges);
        let codes = proptest::collection::vec(0u32..4, n);
        (Just(n), edges, codes).prop_map(|(n, edges, codes)| {
            let mut g = AttributedGraph::new(n, AttributeSchema::new(2));
            g.set_all_attribute_codes(&codes).unwrap();
            for (u, v) in edges {
                if u != v {
                    let _ = g.try_add_edge(u, v).unwrap();
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// µ(G, k) always produces a k-bounded graph, never adds edges, and never
    /// touches nodes or attributes (Definition 2).
    #[test]
    fn truncation_invariants(g in arbitrary_graph(40, 160), k in 0usize..20) {
        let out = edge_truncation(&g, k);
        prop_assert!(out.graph.max_degree() <= k);
        prop_assert!(out.graph.num_edges() <= g.num_edges());
        prop_assert_eq!(out.deleted_edges, g.num_edges() - out.graph.num_edges());
        prop_assert_eq!(out.graph.num_nodes(), g.num_nodes());
        prop_assert_eq!(out.graph.attribute_codes(), g.attribute_codes());
        prop_assert!(out.graph.check_consistency().is_ok());
    }

    /// Truncation with k >= d_max is the identity on the edge set.
    #[test]
    fn truncation_identity_above_dmax(g in arbitrary_graph(30, 120)) {
        let out = edge_truncation(&g, g.max_degree());
        prop_assert_eq!(out.graph.edge_vec(), g.edge_vec());
    }

    /// The edge-adjacency sensitivity argument behind Algorithm 5: changing a
    /// single node's attribute code changes the Q_X counts by at most 2 in L1,
    /// and leaves the Q_F counts of a *truncated* graph within 2k (Prop. 1).
    #[test]
    fn qx_and_truncated_qf_sensitivity(
        g in arbitrary_graph(30, 120),
        node in 0u32..30,
        new_code in 0u32..4,
        k in 1usize..10,
    ) {
        let node = node % g.num_nodes() as u32;
        let mut g2 = g.clone();
        g2.set_attribute_code(node, new_code).unwrap();

        let qx1 = node_config_counts(&g);
        let qx2 = node_config_counts(&g2);
        let l1_qx: f64 = qx1.iter().zip(&qx2).map(|(a, b)| (a - b).abs()).sum();
        prop_assert!(l1_qx <= 2.0 + 1e-9);

        let qf1 = edge_config_counts(&edge_truncation(&g, k).graph);
        let qf2 = edge_config_counts(&edge_truncation(&g2, k).graph);
        let l1_qf: f64 = qf1.iter().zip(&qf2).map(|(a, b)| (a - b).abs()).sum();
        prop_assert!(l1_qf <= 2.0 * k as f64 + 1e-9,
            "attribute change moved {} > 2k = {}", l1_qf, 2 * k);
    }

    /// Adding or removing one edge changes the truncated Q_F counts by a small
    /// constant. The paper's proof of Proposition 1 gives exactly 3 for a
    /// canonical ordering in which the differing edge comes last; with our
    /// lexicographic canonical ordering a short cascade of re-decisions is
    /// possible in principle, but the impact stays far below the 2k bound the
    /// noise is calibrated to (which is dominated by the attribute-change case
    /// checked above).
    #[test]
    fn truncated_qf_edge_change_sensitivity(
        g in arbitrary_graph(30, 120),
        a in 0u32..30,
        b in 0u32..30,
        k in 2usize..10,
    ) {
        let n = g.num_nodes() as u32;
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let mut g2 = g.clone();
        if g2.has_edge(a, b) {
            g2.remove_edge(a, b).unwrap();
        } else {
            g2.add_edge(a, b).unwrap();
        }
        let qf1 = edge_config_counts(&edge_truncation(&g, k).graph);
        let qf2 = edge_config_counts(&edge_truncation(&g2, k).graph);
        let l1: f64 = qf1.iter().zip(&qf2).map(|(x, y)| (x - y).abs()).sum();
        prop_assert!(
            l1 <= 2.0 * k as f64 + 1e-9,
            "edge change moved truncated Q_F by {} > 2k = {}", l1, 2 * k
        );
    }

    /// Learned parameter vectors are probability distributions.
    #[test]
    fn theta_estimates_are_distributions(g in arbitrary_graph(30, 120)) {
        let tx = ThetaX::from_graph(&g);
        let tf = ThetaF::from_graph(&g);
        prop_assert!((tx.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!((tf.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(tx.probabilities().iter().all(|&p| (0.0..=1.0).contains(&p)));
        prop_assert!(tf.probabilities().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Acceptance probabilities are valid probabilities with supremum 1.
    #[test]
    fn acceptance_probabilities_are_valid(
        target in proptest::collection::vec(0.0f64..1.0, 10),
        observed in proptest::collection::vec(0.0f64..1.0, 10),
    ) {
        prop_assume!(target.iter().sum::<f64>() > 0.0);
        prop_assume!(observed.iter().sum::<f64>() > 0.0);
        let schema = AttributeSchema::new(2);
        let t = ThetaF::new(schema, target).unwrap();
        let o = ThetaF::new(schema, observed).unwrap();
        let a = acceptance_probabilities(&t, &o, None);
        prop_assert_eq!(a.len(), 10);
        prop_assert!(a.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        let max = a.iter().copied().fold(0.0f64, f64::max);
        prop_assert!((max - 1.0).abs() < 1e-9);
    }

    /// Isotonic regression output is monotone, sum-preserving, and within the
    /// input's range.
    #[test]
    fn isotonic_regression_invariants(values in proptest::collection::vec(-50.0f64..50.0, 1..60)) {
        let out = isotonic_regression(&values);
        prop_assert_eq!(out.len(), values.len());
        for w in out.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-9);
        }
        let sum_in: f64 = values.iter().sum();
        let sum_out: f64 = out.iter().sum();
        prop_assert!((sum_in - sum_out).abs() < 1e-6);
        let min_in = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_in = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(out.iter().all(|&v| v >= min_in - 1e-9 && v <= max_in + 1e-9));
    }

    /// Normalisation always produces a distribution, and the evaluation
    /// metrics respect their ranges (H, KS in [0, 1], zero on identical
    /// inputs).
    #[test]
    fn metric_ranges(raw in proptest::collection::vec(0.0f64..10.0, 1..30)) {
        let p = normalize(&raw);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(hellinger_distance(&p, &p) < 1e-9);
        prop_assert!(ks_statistic(&p, &p) < 1e-9);
        let q = {
            let mut q = p.clone();
            q.rotate_right(1);
            q
        };
        let h = hellinger_distance(&p, &q);
        let ks = ks_statistic(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&h));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ks));
    }

    /// Degree-distribution views are self-consistent: the distribution sums to
    /// one and the CCDF complements the CDF.
    #[test]
    fn degree_sequence_views(g in arbitrary_graph(40, 160)) {
        let s = DegreeSequence::from_graph(&g);
        let dist = s.distribution();
        prop_assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let cdf = s.cdf();
        let ccdf = s.ccdf();
        for (c, cc) in cdf.iter().zip(&ccdf) {
            prop_assert!((c + cc - 1.0).abs() < 1e-9);
        }
        prop_assert!((s.implied_edges() - g.num_edges() as f64).abs() < 1e-9);
    }
}
