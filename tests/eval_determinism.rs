//! Determinism contract of the `agmdp-eval` experiment harness: the same
//! plan and master seed must produce **byte-identical** JSON and CSV
//! artifacts at every thread count — trials fan out over the chunked
//! executor, so `threads` is scheduling only, exactly like the synthesis
//! engine one level down.
//!
//! Determinism covers failures too: at an unlucky seed a DP trial can fail
//! outright (e.g. an all-zero noisy degree sequence at small ε), and then it
//! must fail with the *same* error at every thread count.

use agmdp::eval::EvalPlan;
use proptest::prelude::*;

/// All four artifact renderings of one plan run at a given thread count, or
/// the run's (deterministic) error message.
fn artifacts(seed: u64, threads: usize) -> Result<(String, String, String, String), String> {
    // Both structural models, a DP level and the non-private baseline: every
    // harness code path in one small grid.
    let mut plan = EvalPlan::parse(
        "plan determinism\ndataset toy\nepsilon 1 inf\nmodel fcl tricycle\nrepetitions 2\n",
    )
    .expect("plan parses");
    plan.seed = seed;
    plan.threads = threads;
    let report = plan.run().map_err(|e| e.to_string())?;
    Ok((
        report.to_json(),
        report.aggregates_json(),
        report.trials_csv(),
        report.aggregates_csv(),
    ))
}

proptest! {
    // Each case runs 3 × 8 full synthesis trials on the toy graph; keep the
    // case count modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// threads = 1 and threads ∈ {2, 8} produce byte-identical artifacts —
    /// or byte-identical failures — for arbitrary master seeds (the grid
    /// covers both models and both privacy modes).
    #[test]
    fn eval_artifacts_are_thread_count_invariant(seed in 0u64..u64::MAX) {
        let serial = artifacts(seed, 1);
        for threads in [2usize, 8] {
            let parallel = artifacts(seed, threads);
            prop_assert_eq!(
                &parallel, &serial,
                "threads = {} diverged from serial at seed {}",
                threads, seed
            );
        }
    }

    /// Different master seeds produce different trials (the grid is actually
    /// seed-driven, not constant). Skipped when either seed's run fails —
    /// failure determinism is the other test's job.
    #[test]
    fn eval_artifacts_depend_on_the_master_seed(seed in 0u64..u64::MAX / 2) {
        if let (Ok(a), Ok(b)) = (artifacts(seed, 1), artifacts(seed + 1, 1)) {
            prop_assert_ne!(a.2, b.2);
        }
    }
}
