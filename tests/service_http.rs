//! End-to-end test of the `agmdp-service` HTTP server over real sockets:
//! boot on an ephemeral port, register a dataset, run two synthesize jobs,
//! watch the ledger decrease, get refused once the budget is exhausted, and
//! verify the ledger state survives a server restart.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use agmdp::graph::io;
use agmdp::service::json;
use agmdp::service::{ServerHandle, ServiceConfig, Transport};
use serde::Value;

// ---------------------------------------------------------------------------
// A tiny raw-TCP HTTP client (the repo vendors no HTTP client either).
// ---------------------------------------------------------------------------

struct Reply {
    status: u16,
    body: Value,
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let body_text = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_default();
    let body =
        json::parse(body_text).unwrap_or_else(|e| panic!("non-JSON body ({e}): {body_text:?}"));
    Reply { status, body }
}

fn get(addr: SocketAddr, path: &str) -> Reply {
    request(addr, "GET", path, None)
}

/// Fetches a path and returns the status plus the raw (unparsed) body —
/// for the non-JSON Prometheus exposition at `GET /metrics`.
fn get_text(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");
    stream.write_all(head.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Reply {
    request(addr, "POST", path, Some(body))
}

/// Extracts the value of an unlabelled metric from a Prometheus exposition.
fn parse_metric(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {name} not found in {text}"))
}

fn field_f64(value: &Value, key: &str) -> f64 {
    json::get(value, key)
        .and_then(json::as_f64)
        .unwrap_or_else(|| panic!("missing number '{key}' in {value:?}"))
}

fn field_u64(value: &Value, key: &str) -> u64 {
    json::get(value, key)
        .and_then(json::as_u64)
        .unwrap_or_else(|| panic!("missing integer '{key}' in {value:?}"))
}

fn field_bool(value: &Value, key: &str) -> bool {
    json::get(value, key)
        .and_then(json::as_bool)
        .unwrap_or_else(|| panic!("missing bool '{key}' in {value:?}"))
}

/// Polls `GET /jobs/:id` until the job leaves queued/running.
fn wait_for_job(addr: SocketAddr, job_id: u64) -> Value {
    for _ in 0..1200 {
        let reply = get(addr, &format!("/jobs/{job_id}"));
        assert_eq!(reply.status, 200);
        let status = json::get(&reply.body, "status")
            .and_then(json::as_str)
            .expect("job status")
            .to_string();
        match status.as_str() {
            "queued" | "running" => std::thread::sleep(Duration::from_millis(25)),
            "completed" => return reply.body,
            other => panic!("job {job_id} ended as {other}: {:?}", reply.body),
        }
    }
    panic!("job {job_id} did not complete in time");
}

fn boot(ledger_path: &std::path::Path) -> ServerHandle {
    agmdp::service::start(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(), // ephemeral port
        threads: 3,
        ledger_path: Some(ledger_path.to_path_buf()),
        quiet: true,
        ..ServiceConfig::default()
    })
    .expect("server start")
}

#[test]
fn budget_ledger_enforces_and_survives_restart_over_http() {
    let dir = std::env::temp_dir().join("agmdp_service_http_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ledger_path = dir.join(format!("budget_{}.ledger", std::process::id()));
    std::fs::remove_file(&ledger_path).ok();

    let graph_text = io::to_text(&agmdp::datasets::toy_social_graph());
    let register_body = serde_json::to_string(&Value::Object(vec![
        ("name".to_string(), Value::Str("toy".to_string())),
        ("budget".to_string(), Value::Float(1.0)),
        ("graph".to_string(), Value::Str(graph_text.clone())),
    ]))
    .unwrap();

    let server = boot(&ledger_path);
    let addr = server.local_addr();

    // Liveness and an empty registry.
    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    assert_eq!(
        json::get(&health.body, "status").and_then(json::as_str),
        Some("ok")
    );
    assert_eq!(field_u64(&health.body, "datasets"), 0);

    // Register the dataset with a total budget of ε = 1.
    let created = post(addr, "/datasets", &register_body);
    assert_eq!(created.status, 201, "{:?}", created.body);
    let listed = get(addr, "/datasets");
    assert_eq!(listed.status, 200);
    match json::get(&listed.body, "datasets") {
        Some(Value::Array(items)) => assert_eq!(items.len(), 1),
        other => panic!("expected dataset array, got {other:?}"),
    }

    // Two synthesize jobs at ε = 0.4 each: both succeed, ledger decreases.
    let first = post(
        addr,
        "/synthesize",
        r#"{"dataset":"toy","epsilon":0.4,"seed":11,"return_graph":true}"#,
    );
    assert_eq!(first.status, 202, "{:?}", first.body);
    assert!(!field_bool(&first.body, "cache_hit"));
    let first_job = wait_for_job(addr, field_u64(&first.body, "job_id"));
    let first_result = json::get(&first_job, "result").expect("result");
    let stats = json::get(first_result, "stats").expect("stats");
    assert!(field_u64(stats, "edges") > 0);
    let first_graph = json::get(first_result, "graph")
        .and_then(json::as_str)
        .expect("graph text")
        .to_string();

    let second = post(
        addr,
        "/synthesize",
        r#"{"dataset":"toy","epsilon":0.4,"seed":22}"#,
    );
    assert_eq!(second.status, 202, "{:?}", second.body);
    wait_for_job(addr, field_u64(&second.body, "job_id"));

    let budget = get(addr, "/budget/toy");
    assert_eq!(budget.status, 200);
    assert!((field_f64(&budget.body, "total") - 1.0).abs() < 1e-12);
    assert!((field_f64(&budget.body, "spent") - 0.8).abs() < 1e-12);
    assert!((field_f64(&budget.body, "remaining") - 0.2).abs() < 1e-12);

    // A third request over the remaining budget is refused with 402 without
    // creating a job.
    let refused = post(
        addr,
        "/synthesize",
        r#"{"dataset":"toy","epsilon":0.4,"seed":33}"#,
    );
    assert_eq!(refused.status, 402, "{:?}", refused.body);
    assert_eq!(
        json::get(&refused.body, "error").and_then(json::as_str),
        Some("budget_exhausted")
    );
    // The refused request did not move the ledger.
    assert!((field_f64(&get(addr, "/budget/toy").body, "spent") - 0.8).abs() < 1e-12);

    // A repeat of the first request is a cache hit: allowed despite only 0.2
    // remaining, spends nothing (post-processing invariance), and reproduces
    // the exact same synthetic graph.
    let repeat = post(
        addr,
        "/synthesize",
        r#"{"dataset":"toy","epsilon":0.4,"seed":11,"return_graph":true}"#,
    );
    assert_eq!(repeat.status, 202, "{:?}", repeat.body);
    assert!(field_bool(&repeat.body, "cache_hit"));
    assert_eq!(field_f64(&repeat.body, "epsilon_spent"), 0.0);
    let repeat_job = wait_for_job(addr, field_u64(&repeat.body, "job_id"));
    let repeat_graph = json::get(&repeat_job, "result")
        .and_then(|r| json::get(r, "graph"))
        .and_then(json::as_str)
        .expect("graph text");
    assert_eq!(repeat_graph, first_graph);
    assert!((field_f64(&get(addr, "/budget/toy").body, "spent") - 0.8).abs() < 1e-12);

    // Restart the server on the same ledger journal.
    server.stop();
    let server = boot(&ledger_path);
    let addr = server.local_addr();

    // The registry is in-memory, so the dataset is re-registered — but the
    // replayed ledger still knows 0.8 of the 1.0 is gone.
    let recreated = post(addr, "/datasets", &register_body);
    assert_eq!(recreated.status, 201, "{:?}", recreated.body);
    let budget = get(addr, "/budget/toy");
    assert!((field_f64(&budget.body, "spent") - 0.8).abs() < 1e-12);

    // Still refused: restarts must not refill budgets.
    let refused = post(
        addr,
        "/synthesize",
        r#"{"dataset":"toy","epsilon":0.4,"seed":44}"#,
    );
    assert_eq!(refused.status, 402, "{:?}", refused.body);

    // But the remaining 0.2 is still spendable.
    let small = post(
        addr,
        "/synthesize",
        r#"{"dataset":"toy","epsilon":0.2,"seed":55}"#,
    );
    assert_eq!(small.status, 202, "{:?}", small.body);
    wait_for_job(addr, field_u64(&small.body, "job_id"));
    assert!(field_f64(&get(addr, "/budget/toy").body, "remaining") < 1e-9);

    server.stop();
    std::fs::remove_file(&ledger_path).ok();
}

#[test]
fn metrics_expose_request_counts_cache_outcomes_and_ledger_gauges() {
    let store_dir = std::env::temp_dir().join(format!(
        "agmdp_service_http_metrics_store_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&store_dir).ok();
    let server = agmdp::service::start(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ledger_path: None,
        quiet: true,
        release_store: Some(store_dir.clone()),
        ..ServiceConfig::default()
    })
    .expect("server start");
    let addr = server.local_addr();

    let graph_text = io::to_text(&agmdp::datasets::toy_social_graph());
    let register_body = serde_json::to_string(&Value::Object(vec![
        ("name".to_string(), Value::Str("toy".to_string())),
        ("budget".to_string(), Value::Float(2.0)),
        ("graph".to_string(), Value::Str(graph_text)),
    ]))
    .unwrap();
    assert_eq!(post(addr, "/datasets", &register_body).status, 201);

    // A cold job, then an identical repeat: the repeat is served straight
    // from the on-disk release store — no job runs, the fit cache is never
    // even consulted.
    let body = r#"{"dataset":"toy","epsilon":0.5,"seed":7}"#;
    let first = post(addr, "/synthesize", body);
    assert_eq!(first.status, 202, "{:?}", first.body);
    assert!(!field_bool(&first.body, "cache_hit"));
    wait_for_job(addr, field_u64(&first.body, "job_id"));
    let second = post(addr, "/synthesize", body);
    assert_eq!(second.status, 202, "{:?}", second.body);
    assert!(field_bool(&second.body, "cache_hit"));
    assert!(field_bool(&second.body, "store_hit"));
    wait_for_job(addr, field_u64(&second.body, "job_id"));

    // Same fit parameters but a different refinement count: a *store* miss
    // (refinement is part of the release key) that becomes a *fit-cache* hit
    // when the job runs (refinement is post-processing, outside the fit key).
    let refined = post(
        addr,
        "/synthesize",
        r#"{"dataset":"toy","epsilon":0.5,"seed":7,"iterations":5}"#,
    );
    assert_eq!(refined.status, 202, "{:?}", refined.body);
    assert!(json::get(&refined.body, "store_hit").is_none());
    wait_for_job(addr, field_u64(&refined.body, "job_id"));

    let budget = get(addr, "/budget/toy");
    let spent = field_f64(&budget.body, "spent");
    let remaining = field_f64(&budget.body, "remaining");

    let (status, text) = get_text(addr, "/metrics");
    assert_eq!(status, 200);
    // Request counts by endpoint, method, and status...
    assert!(
        text.contains(
            "agmdp_requests_total{endpoint=\"/synthesize\",method=\"POST\",status=\"202\"} 3"
        ),
        "{text}"
    );
    assert!(
        text.contains(
            "agmdp_requests_total{endpoint=\"/datasets\",method=\"POST\",status=\"201\"} 1"
        ),
        "{text}"
    );
    // ...exactly one cold fit and one fit-cache hit; only the two jobs that
    // actually ran count as finished — the store hit never became a job...
    assert!(text.contains("agmdp_fit_cache_misses_total 1"), "{text}");
    assert!(text.contains("agmdp_fit_cache_hits_total 1"), "{text}");
    assert!(
        text.contains("agmdp_jobs_finished_total{outcome=\"completed\"} 2"),
        "{text}"
    );
    // ...one release-store hit (the byte-identical replay), two misses (the
    // cold request and the different refinement count), and occupancy gauges
    // walked from the store directory at scrape time...
    assert!(text.contains("agmdp_release_store_hits_total 1"), "{text}");
    assert!(
        text.contains("agmdp_release_store_misses_total 2"),
        "{text}"
    );
    let stored_bytes = parse_metric(&text, "agmdp_release_store_bytes_total");
    assert!(stored_bytes > 0.0, "{text}");
    assert_eq!(parse_metric(&text, "agmdp_release_store_releases"), 2.0);
    assert!(
        parse_metric(&text, "agmdp_release_store_size_bytes") >= stored_bytes,
        "{text}"
    );
    // ...the fit stage timed exactly once (the hit skipped learning)...
    assert!(
        text.contains("agmdp_stage_duration_seconds_count{stage=\"fit\"} 1"),
        "{text}"
    );
    // ...and ledger gauges agreeing with GET /budget/toy.
    assert!(
        text.contains("agmdp_epsilon_total{dataset=\"toy\"} 2"),
        "{text}"
    );
    assert!(
        text.contains(&format!("agmdp_epsilon_spent{{dataset=\"toy\"}} {spent}")),
        "{text}"
    );
    assert!(
        text.contains(&format!(
            "agmdp_epsilon_remaining{{dataset=\"toy\"}} {remaining}"
        )),
        "{text}"
    );

    server.stop();
    std::fs::remove_dir_all(&store_dir).ok();
}

#[test]
fn malformed_requests_are_rejected_cleanly() {
    let server = agmdp::service::start(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ledger_path: None,
        quiet: true,
        ..ServiceConfig::default()
    })
    .expect("server start");
    let addr = server.local_addr();

    assert_eq!(get(addr, "/no-such-route").status, 404);
    assert_eq!(post(addr, "/synthesize", "{not json").status, 400);
    assert_eq!(
        post(addr, "/synthesize", r#"{"dataset":"ghost","epsilon":1.0}"#).status,
        404
    );
    assert_eq!(get(addr, "/budget/ghost").status, 404);

    // A raw non-HTTP blob gets a 400, not a hang or a crash.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"\x00\x01\x02 garbage\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 4"), "{raw:?}");

    server.stop();
}

// ---------------------------------------------------------------------------
// Keep-alive and byte-identity across transports / thread counts.
// ---------------------------------------------------------------------------

fn boot_with(transport: Transport, threads: usize) -> ServerHandle {
    agmdp::service::start(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        ledger_path: None,
        quiet: true,
        transport,
        ..ServiceConfig::default()
    })
    .expect("server start")
}

/// One request per fresh connection with `Connection: close`, returning the
/// complete raw response bytes. Works on both transports.
fn raw_roundtrip(addr: SocketAddr, method: &str, path: &str, body: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    raw
}

/// The probe script for byte-identity checks: deterministic endpoints only
/// (`/metrics` is excluded — its counters depend on scrape order).
const PROBES: &[(&str, &str, &str)] = &[
    ("GET", "/healthz", ""),
    ("GET", "/no-such-route", ""),
    ("POST", "/synthesize", "{not json"),
    ("DELETE", "/healthz", ""),
    ("GET", "/budget/ghost", ""),
];

#[test]
fn responses_are_byte_identical_across_transports() {
    let event = boot_with(Transport::Event, 2);
    let blocking = boot_with(Transport::Blocking, 2);
    for (method, path, body) in PROBES {
        let from_event = raw_roundtrip(event.local_addr(), method, path, body);
        let from_blocking = raw_roundtrip(blocking.local_addr(), method, path, body);
        assert_eq!(
            from_event,
            from_blocking,
            "transport-dependent bytes for {method} {path}:\nevent:    {:?}\nblocking: {:?}",
            String::from_utf8_lossy(&from_event),
            String::from_utf8_lossy(&from_blocking),
        );
    }
    event.stop();
    blocking.stop();
}

/// Runs the probe script as a single pipelined keep-alive connection and
/// returns the concatenated response bytes (read to EOF after the final
/// `Connection: close`).
#[cfg(unix)]
fn keepalive_script(addr: SocketAddr) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut script = Vec::new();
    for (i, (method, path, body)) in PROBES.iter().enumerate() {
        let last = i + 1 == PROBES.len();
        let connection = if last { "close" } else { "keep-alive" };
        script.extend_from_slice(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        );
        script.extend_from_slice(body.as_bytes());
    }
    stream.write_all(&script).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read responses");
    raw
}

#[cfg(unix)]
#[test]
fn keepalive_pipeline_is_byte_identical_across_thread_counts() {
    let one = boot_with(Transport::Event, 1);
    let many = boot_with(Transport::Event, 4);
    let from_one = keepalive_script(one.local_addr());
    let from_many = keepalive_script(many.local_addr());
    assert!(!from_one.is_empty());
    // All five responses came back over the single connection, in order.
    let text = String::from_utf8_lossy(&from_one);
    assert_eq!(text.matches("HTTP/1.1 ").count(), PROBES.len(), "{text}");
    assert_eq!(text.matches("Connection: keep-alive").count(), 4, "{text}");
    assert_eq!(text.matches("Connection: close").count(), 1, "{text}");
    assert_eq!(
        from_one,
        from_many,
        "thread-count-dependent bytes:\n1: {:?}\n4: {:?}",
        String::from_utf8_lossy(&from_one),
        String::from_utf8_lossy(&from_many),
    );
    one.stop();
    many.stop();
}
