//! Integration tests for the file-based release workflow used by the CLI:
//! dataset generation → text serialisation → re-loading → private synthesis →
//! serialisation of the publishable output, plus the categorical-attribute
//! encoding path of Section 7.

use agmdp::graph::categorical::{CategoricalAttribute, CategoricalEncoder};
use agmdp::graph::io;
use agmdp::prelude::*;
use rand::SeedableRng;

#[test]
fn file_based_release_workflow_roundtrips() {
    let dir = std::env::temp_dir().join("agmdp_cli_format_test");
    std::fs::create_dir_all(&dir).unwrap();
    let input_path = dir.join("input.graph");
    let output_path = dir.join("private.graph");

    // Generate a small dataset and write it out as the CLI would.
    let spec = DatasetSpec::petster().scaled(0.1);
    let input = generate_dataset(&spec, 5).unwrap();
    io::write_file(&input, &input_path).unwrap();

    // Reload and run the private synthesis on the reloaded copy.
    let reloaded = io::read_file(&input_path).unwrap();
    assert_eq!(reloaded, input);
    let config = AgmConfig {
        privacy: Privacy::Dp { epsilon: 1.0 },
        ..AgmConfig::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let synthetic = synthesize(&reloaded, &config, &mut rng).unwrap();
    io::write_file(&synthetic, &output_path).unwrap();

    // The published file parses back to exactly the synthetic graph.
    let published = io::read_file(&output_path).unwrap();
    assert_eq!(published, synthetic);
    assert_eq!(published.num_nodes(), input.num_nodes());
    assert_eq!(published.schema(), input.schema());

    std::fs::remove_file(&input_path).ok();
    std::fs::remove_file(&output_path).ok();
}

#[test]
fn categorical_encoding_survives_synthesis_and_io() {
    let encoder = CategoricalEncoder::new(vec![
        CategoricalAttribute::new("status", &["a", "b", "c"]).unwrap(),
        CategoricalAttribute::new("bracket", &["low", "high"]).unwrap(),
    ])
    .unwrap();
    let mut graph = AttributedGraph::new(60, encoder.schema());
    for v in 0..60u32 {
        let status = ["a", "b", "c"][(v % 3) as usize];
        let bracket = if v < 30 { "low" } else { "high" };
        graph
            .set_attribute_code(v, encoder.encode_labels(&[status, bracket]).unwrap())
            .unwrap();
    }
    for v in 0..60u32 {
        let _ = graph.try_add_edge(v, (v + 1) % 60).unwrap();
        let _ = graph.try_add_edge(v, (v + 2) % 60).unwrap();
        let _ = graph.try_add_edge(v, (v + 7) % 60).unwrap();
    }

    let config = AgmConfig {
        privacy: Privacy::Dp { epsilon: 2.0 },
        ..AgmConfig::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let synthetic = synthesize(&graph, &config, &mut rng).unwrap();

    // Every synthetic attribute code decodes without panicking and the text
    // format preserves the codes bit-for-bit.
    let text = io::to_text(&synthetic);
    let parsed = io::from_text(&text).unwrap();
    assert_eq!(parsed.attribute_codes(), synthetic.attribute_codes());
    for v in parsed.nodes() {
        let labels = encoder.decode(parsed.attribute_code(v));
        assert_eq!(labels.len(), 2);
        assert!(["a", "b", "c"].contains(&labels[0]));
        assert!(["low", "high"].contains(&labels[1]));
    }
}
