//! Golden-file regression test for the committed default evaluation plan.
//!
//! Runs `plans/default.plan` at the reduced repetition count the CI
//! `eval-smoke` job uses and compares the aggregate JSON artifact against
//! the checked-in golden file **byte for byte** — the harness is
//! deterministic, so there is no tolerance. A diff here means the synthesis
//! pipeline's output changed (seeding, sampling order, a mechanism, or a
//! metric definition); if the change is intended, regenerate with:
//!
//! ```text
//! cargo run --release -- evaluate --plan plans/default.plan \
//!     --repetitions 2 --out target/eval-smoke
//! cp target/eval-smoke/aggregates.json tests/golden/eval_smoke_aggregates.json
//! ```
//!
//! and update the tables in docs/EVALUATION.md from a full-repetition run.

use agmdp::eval::EvalPlan;

const GOLDEN: &str = include_str!("golden/eval_smoke_aggregates.json");
/// Must match the CI job's `--repetitions` override.
const SMOKE_REPETITIONS: usize = 2;

#[test]
fn default_plan_aggregates_match_the_golden_file() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/plans/default.plan"))
        .expect("committed default plan exists");
    let mut plan = EvalPlan::parse(&text).expect("default plan parses");
    plan.repetitions = SMOKE_REPETITIONS;
    let report = plan.run().expect("default plan runs");
    let got = report.aggregates_json();
    assert!(
        got == GOLDEN,
        "aggregates diverged from tests/golden/eval_smoke_aggregates.json — \
         the pipeline's deterministic output changed; see the header of this \
         test for the regeneration commands.\nfirst difference at byte {}",
        got.bytes()
            .zip(GOLDEN.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| got.len().min(GOLDEN.len()))
    );
}

#[test]
fn default_plan_covers_the_issue_grid() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/plans/default.plan"))
        .expect("committed default plan exists");
    let plan = EvalPlan::parse(&text).expect("default plan parses");
    // toy + a lastfm-like synthetic dataset, ε ∈ {0.1, 0.5, 1, 2, ∞}, both
    // models — the grid the results book documents.
    assert_eq!(plan.datasets.len(), 2);
    let labels: Vec<String> = plan.epsilons.iter().map(|e| e.label()).collect();
    assert_eq!(labels, ["0.1", "0.5", "1", "2", "inf"]);
    assert_eq!(plan.models.len(), 2);
    assert_eq!(plan.repetitions, 5);
    assert_eq!(plan.seed, 2016);
}
