//! Fault-injection battery: drives the event-driven front end into each
//! load-shedding and timeout path deterministically and asserts the
//! corresponding `/metrics` counters tick exactly once per event.
//!
//! The scenarios use the `--debug-endpoints` fault hooks (`/__debug/sleep`
//! to pin a worker, `/__debug/payload` to jam a send buffer) so the tests
//! control *when* the server is saturated instead of racing it.
#![cfg(unix)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use agmdp::service::{ServiceConfig, Transport};

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

fn send_get(stream: &mut TcpStream, path: &str, close: bool) {
    let connection = if close { "close" } else { "keep-alive" };
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: {connection}\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
}

/// Reads one response off the stream; returns (status, head, body).
fn read_one_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    while !buf.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("read head byte");
        assert!(n > 0, "EOF inside response head: {buf:?}");
        buf.push(byte[0]);
        assert!(buf.len() < 64 * 1024, "unterminated head");
    }
    let head = String::from_utf8_lossy(&buf).to_string();
    let content_length: usize = head
        .lines()
        .find_map(|line| line.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no Content-Length in {head:?}"));
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("read body");
    let status: u16 = head
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {head:?}"));
    (status, head, String::from_utf8_lossy(&body).to_string())
}

/// Scrapes `/metrics` over a fresh connection.
fn scrape_metrics(addr: SocketAddr) -> String {
    let mut stream = connect(addr);
    send_get(&mut stream, "/metrics", true);
    let (status, _, body) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    body
}

/// Polls `/metrics` until `needle` appears (the reactor records timeouts on
/// its sweep tick, slightly after the wall-clock deadline).
fn wait_for_metric(addr: SocketAddr, needle: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let text = scrape_metrics(addr);
        if text.contains(needle) {
            return text;
        }
        assert!(
            Instant::now() < deadline,
            "metric {needle:?} never appeared; last scrape:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn full_job_queue_sheds_with_503_and_retry_after_exactly_once() {
    // One worker, one queue slot: the third concurrent request MUST shed.
    let server = agmdp::service::start(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        queue_depth: 1,
        ledger_path: None,
        quiet: true,
        transport: Transport::Event,
        debug_endpoints: true,
        ..ServiceConfig::default()
    })
    .expect("server start");
    let addr = server.local_addr();

    // Occupy the single worker…
    let mut pinned = connect(addr);
    send_get(&mut pinned, "/__debug/sleep/1500", false);
    std::thread::sleep(Duration::from_millis(150));
    // …and the single queue slot.
    let mut queued = connect(addr);
    send_get(&mut queued, "/__debug/sleep/50", false);
    std::thread::sleep(Duration::from_millis(150));

    // A third request is shed deterministically: 503 + Retry-After, and the
    // connection stays open (shedding is per-request, not per-connection).
    let mut shed = connect(addr);
    send_get(&mut shed, "/healthz", false);
    let (status, head, body) = read_one_response(&mut shed);
    assert_eq!(status, 503, "{head}{body}");
    assert!(head.contains("Retry-After: 1"), "{head}");
    assert!(body.contains("overloaded"), "{body}");

    // The saturating requests complete normally once the worker frees up.
    let (status, _, _) = read_one_response(&mut pinned);
    assert_eq!(status, 200);
    let (status, _, _) = read_one_response(&mut queued);
    assert_eq!(status, 200);

    // The shed connection is still usable, and the counter ticked exactly
    // once for the one shed event.
    send_get(&mut shed, "/metrics", true);
    let (status, _, metrics) = read_one_response(&mut shed);
    assert_eq!(status, 200);
    assert!(
        metrics.contains("agmdp_http_sheds_total{reason=\"queue_full\"} 1"),
        "{metrics}"
    );
    assert!(!metrics.contains("reason=\"rate_limit\""), "{metrics}");

    server.stop();
}

#[test]
fn slow_read_client_times_out_without_stalling_others() {
    let server = agmdp::service::start(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ledger_path: None,
        quiet: true,
        transport: Transport::Event,
        read_timeout: Duration::from_millis(400),
        ..ServiceConfig::default()
    })
    .expect("server start");
    let addr = server.local_addr();

    // The slowloris connection: a partial request line, then silence. The
    // read deadline is absolute from the first byte — it must not reset on
    // each trickled byte.
    let mut slow = connect(addr);
    slow.write_all(b"GET /hea").unwrap();

    // While the attacker stalls, other clients are fully served.
    for _ in 0..3 {
        let mut fast = connect(addr);
        send_get(&mut fast, "/healthz", true);
        let (status, _, _) = read_one_response(&mut fast);
        assert_eq!(status, 200);
    }

    // The stalled connection gets 408 and a close once the deadline passes.
    let (status, head, _) = read_one_response(&mut slow);
    assert_eq!(status, 408, "{head}");
    assert!(head.contains("Connection: close"), "{head}");
    let mut rest = Vec::new();
    slow.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    let metrics = wait_for_metric(addr, "agmdp_conn_timeouts_total{kind=\"read\"} 1");
    assert!(!metrics.contains("kind=\"read\"} 2"), "{metrics}");

    server.stop();
}

#[test]
fn idle_keepalive_connection_is_reaped_after_idle_timeout() {
    let server = agmdp::service::start(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ledger_path: None,
        quiet: true,
        transport: Transport::Event,
        idle_timeout: Duration::from_millis(300),
        ..ServiceConfig::default()
    })
    .expect("server start");
    let addr = server.local_addr();

    // One complete round trip, then silence between requests: the idle
    // clock (not the read clock) reaps the connection.
    let mut stream = connect(addr);
    send_get(&mut stream, "/healthz", false);
    let (status, _, _) = read_one_response(&mut stream);
    assert_eq!(status, 200);

    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap(); // EOF, no 408 body
    assert!(rest.is_empty(), "{rest:?}");

    let metrics = wait_for_metric(addr, "agmdp_conn_timeouts_total{kind=\"idle\"} 1");
    assert!(!metrics.contains("kind=\"read\""), "{metrics}");

    server.stop();
}

#[test]
fn write_stalled_client_is_dropped_on_write_timeout() {
    let server = agmdp::service::start(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ledger_path: None,
        quiet: true,
        transport: Transport::Event,
        debug_endpoints: true,
        write_timeout: Duration::from_millis(400),
        // Shrink the server-side send buffer so an unread 8 MB response
        // jams quickly instead of vanishing into kernel buffers.
        send_buffer_bytes: Some(4096),
        ..ServiceConfig::default()
    })
    .expect("server start");
    let addr = server.local_addr();

    // Ask for 8 MB and never read it. The reactor's write deadline must
    // drop us rather than buffer forever.
    let mut stalled = connect(addr);
    send_get(&mut stalled, "/__debug/payload/8388608", false);

    let metrics = wait_for_metric(addr, "agmdp_conn_timeouts_total{kind=\"write\"} 1");
    assert!(!metrics.contains("kind=\"write\"} 2"), "{metrics}");

    // Other clients were never blocked by the stalled writer.
    let mut fast = connect(addr);
    send_get(&mut fast, "/healthz", true);
    let (status, _, _) = read_one_response(&mut fast);
    assert_eq!(status, 200);

    drop(stalled);
    server.stop();
}

#[test]
fn per_dataset_rate_limit_sheds_429_with_retry_after() {
    let server = agmdp::service::start(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ledger_path: None,
        quiet: true,
        transport: Transport::Event,
        rate_limit: Some(0.001), // one token, then ~forever to refill
        ..ServiceConfig::default()
    })
    .expect("server start");
    let addr = server.local_addr();

    let graph_text = agmdp::graph::io::to_text(&agmdp::datasets::toy_social_graph());
    let register = serde_json::to_string(&serde::Value::Object(vec![
        ("name".to_string(), serde::Value::Str("toy".to_string())),
        ("budget".to_string(), serde::Value::Float(5.0)),
        ("graph".to_string(), serde::Value::Str(graph_text)),
    ]))
    .unwrap();
    let mut stream = connect(addr);
    stream
        .write_all(
            format!(
                "POST /datasets HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{register}",
                register.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let (status, _, body) = read_one_response(&mut stream);
    assert_eq!(status, 201, "{body}");

    // First synthesize takes the bucket's one token…
    let job = r#"{"dataset":"toy","epsilon":0.1,"seed":1}"#;
    let post = format!(
        "POST /synthesize HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{job}",
        job.len()
    );
    stream.write_all(post.as_bytes()).unwrap();
    let (status, _, body) = read_one_response(&mut stream);
    assert_eq!(status, 202, "{body}");

    // …and the immediate repeat is rate-limited before touching the ledger.
    let job2 = r#"{"dataset":"toy","epsilon":0.1,"seed":2}"#;
    let post2 = format!(
        "POST /synthesize HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{job2}",
        job2.len()
    );
    stream.write_all(post2.as_bytes()).unwrap();
    let (status, head, body) = read_one_response(&mut stream);
    assert_eq!(status, 429, "{body}");
    assert!(head.contains("Retry-After: "), "{head}");
    assert!(body.contains("rate_limited"), "{body}");

    let metrics = wait_for_metric(addr, "agmdp_http_sheds_total{reason=\"rate_limit\"} 1");
    assert!(metrics.contains("agmdp_requests_total"), "{metrics}");

    server.stop();
}
