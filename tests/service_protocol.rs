//! Protocol-torture battery for the event-driven service front end.
//!
//! Every test here speaks raw TCP at the reactor: pipelined requests,
//! byte-at-a-time trickle, oversized heads and bodies, garbage before the
//! request line, half-closed sockets, and connection reuse after error
//! responses. The suite pins the connection state machine in
//! `crates/service/src/conn.rs` — the behaviours asserted here are the
//! contract the load-shedding and keep-alive logic is built on.
//!
//! The event transport only exists on unix (the readiness loop needs
//! epoll/poll); the whole suite is gated accordingly.
#![cfg(unix)]

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use agmdp::service::{ServerHandle, ServiceConfig, Transport};

fn boot(config: ServiceConfig) -> ServerHandle {
    agmdp::service::start(&config).expect("server start")
}

fn small_head_config() -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ledger_path: None,
        quiet: true,
        transport: Transport::Event,
        max_head_bytes: 1024,
        max_body_bytes: 64 * 1024,
        ..ServiceConfig::default()
    }
}

fn default_config() -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ledger_path: None,
        quiet: true,
        transport: Transport::Event,
        ..ServiceConfig::default()
    }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

/// Reads exactly one HTTP/1.1 response (head + Content-Length body) from the
/// stream, leaving any pipelined follower bytes unread. Returns
/// `(status, full_response_text)`.
fn read_one_response(stream: &mut TcpStream) -> (u16, String) {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    // Read to end of head.
    while !buf.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("read head byte");
        assert!(n > 0, "EOF inside response head: {buf:?}");
        buf.push(byte[0]);
        assert!(buf.len() < 64 * 1024, "unterminated head");
    }
    let head = String::from_utf8_lossy(&buf).to_string();
    let content_length: usize = head
        .lines()
        .find_map(|line| line.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no Content-Length in {head:?}"));
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("read body");
    let status: u16 = head
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {head:?}"));
    (status, head + &String::from_utf8_lossy(&body))
}

#[test]
fn pipelined_requests_answered_in_order_on_one_connection() {
    let server = boot(default_config());
    let mut stream = connect(server.local_addr());

    // Three requests in one write: the state machine must answer them
    // strictly in order, one in flight at a time.
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /no-such HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        )
        .unwrap();

    let (first, text) = read_one_response(&mut stream);
    assert_eq!(first, 200, "{text}");
    let (second, text) = read_one_response(&mut stream);
    assert_eq!(second, 404, "{text}");
    let (third, text) = read_one_response(&mut stream);
    assert_eq!(third, 200, "{text}");
    assert!(text.contains("Connection: close"), "{text}");

    // The final `Connection: close` is honored: EOF, no fourth response.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "bytes after close: {rest:?}");
    server.stop();
}

#[test]
fn request_split_into_single_byte_writes_still_parses() {
    let server = boot(default_config());
    let mut stream = connect(server.local_addr());

    let request = b"POST /synthesize HTTP/1.1\r\nHost: t\r\nContent-Length: 9\r\nConnection: close\r\n\r\n{not json";
    for chunk in request.chunks(1) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
    }
    // Malformed JSON (not malformed HTTP): a clean 400 from the handler.
    let (status, text) = read_one_response(&mut stream);
    assert_eq!(status, 400, "{text}");
    assert!(text.contains("invalid_request"), "{text}");
    server.stop();
}

#[test]
fn oversized_head_is_rejected_431_before_request_completes() {
    let server = boot(small_head_config());
    let mut stream = connect(server.local_addr());

    // Never even finish the head: the cap (1 KiB) must trip mid-stream
    // rather than buffer without bound.
    stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    let filler = format!("X-Filler: {}\r\n", "a".repeat(512));
    stream.write_all(filler.as_bytes()).unwrap();
    stream.write_all(filler.as_bytes()).unwrap();

    let (status, text) = read_one_response(&mut stream);
    assert_eq!(status, 431, "{text}");
    // Parse errors are not recoverable: the server closes.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    server.stop();
}

#[test]
fn oversized_body_is_rejected_413_from_headers_alone() {
    let server = boot(small_head_config());
    let mut stream = connect(server.local_addr());

    // Declare a body far over the 64 KiB cap but send none of it: the 413
    // must come from the Content-Length header, before any body allocation.
    stream
        .write_all(b"POST /synthesize HTTP/1.1\r\nHost: t\r\nContent-Length: 10000000\r\n\r\n")
        .unwrap();
    let (status, text) = read_one_response(&mut stream);
    assert_eq!(status, 413, "{text}");
    server.stop();
}

#[test]
fn garbage_before_request_line_is_400() {
    let server = boot(default_config());
    let mut stream = connect(server.local_addr());
    stream
        .write_all(b"\x16\x03\x01\x02garbage here\r\n\r\n")
        .unwrap();
    let (status, text) = read_one_response(&mut stream);
    assert_eq!(status, 400, "{text}");
    server.stop();
}

#[test]
fn transfer_encoding_is_rejected_not_misframed() {
    let server = boot(default_config());
    let mut stream = connect(server.local_addr());
    stream
        .write_all(
            b"POST /synthesize HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n\
              5\r\nhello\r\n0\r\n\r\n",
        )
        .unwrap();
    let (status, text) = read_one_response(&mut stream);
    assert_eq!(status, 400, "{text}");
    server.stop();
}

#[test]
fn half_closed_socket_still_receives_its_response() {
    let server = boot(default_config());
    let mut stream = connect(server.local_addr());

    // Full request, then shut down our write half before reading anything.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    stream.shutdown(Shutdown::Write).unwrap();

    // The server must treat FIN after a complete request as half-close,
    // answer it, and then close (keep-alive is pointless on a dead reader).
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw:?}");
    assert!(raw.contains("Connection: close"), "{raw:?}");
    server.stop();
}

#[test]
fn connection_survives_application_errors_and_is_reusable() {
    let server = boot(default_config());
    let mut stream = connect(server.local_addr());

    // 404, 405, and a handler-level 400 are application errors: the HTTP
    // framing stayed valid, so keep-alive must survive all of them.
    stream
        .write_all(b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (status, _) = read_one_response(&mut stream);
    assert_eq!(status, 404);

    stream
        .write_all(b"DELETE /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (status, _) = read_one_response(&mut stream);
    assert_eq!(status, 405);

    stream
        .write_all(b"POST /synthesize HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\n\r\n{}")
        .unwrap();
    let (status, _) = read_one_response(&mut stream);
    assert_eq!(status, 400);

    // …and the connection still serves a healthy request afterwards.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let (status, text) = read_one_response(&mut stream);
    assert_eq!(status, 200, "{text}");
    server.stop();
}

#[test]
fn http10_closes_by_default_and_keeps_alive_on_request() {
    let server = boot(default_config());

    // Default HTTP/1.0: one response, then EOF.
    let mut stream = connect(server.local_addr());
    stream.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw:?}");
    assert!(raw.contains("Connection: close"), "{raw:?}");

    // Explicit 1.0 keep-alive opt-in: the connection survives.
    let mut stream = connect(server.local_addr());
    stream
        .write_all(b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        .unwrap();
    let (status, text) = read_one_response(&mut stream);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("Connection: keep-alive"), "{text}");
    stream.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let (status, _) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    server.stop();
}

#[test]
fn unsupported_http_version_gets_505() {
    let server = boot(default_config());
    let mut stream = connect(server.local_addr());
    stream.write_all(b"GET /healthz HTTP/2.0\r\n\r\n").unwrap();
    let (status, text) = read_one_response(&mut stream);
    assert_eq!(status, 505, "{text}");
    server.stop();
}

#[test]
fn expect_100_continue_gets_interim_then_final_response() {
    let server = boot(default_config());
    let mut stream = connect(server.local_addr());
    stream
        .write_all(
            b"POST /synthesize HTTP/1.1\r\nHost: t\r\nExpect: 100-continue\r\nContent-Length: 2\r\nConnection: close\r\n\r\n",
        )
        .unwrap();

    // Interim response arrives before we send the body…
    let mut interim = [0u8; 25];
    stream.read_exact(&mut interim).expect("read interim");
    assert_eq!(&interim, b"HTTP/1.1 100 Continue\r\n\r\n");

    // …then the body completes the request and the real response follows.
    stream.write_all(b"{}").unwrap();
    let (status, _) = read_one_response(&mut stream);
    assert_eq!(status, 400); // `{}` is valid JSON but an invalid request
    server.stop();
}
